"""Correctness tests of the serial CPU references vs scipy/networkx."""

import networkx as nx
import numpy as np
import pytest
from scipy.sparse.csgraph import dijkstra

from repro.cpu.costmodel import XEON_E5_2620, CPUConfig, OpCounts
from repro.cpu.reference import (
    bc_serial,
    bfs_recursive_serial,
    bfs_serial,
    pagerank_serial,
    recursive_bfs_cpu_speedup,
    spmv_serial,
    sssp_serial,
)
from repro.errors import ConfigError, GraphError
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import uniform_random_graph, wiki_vote_like


def random_graph(n=200, seed=0, weighted=True):
    g = uniform_random_graph(n, (1, 8), seed=seed)
    if weighted:
        rng = np.random.default_rng(seed + 1)
        g.weights = rng.integers(1, 10, size=g.n_edges).astype(np.float64)
    return g


class TestOpCounts:
    def test_add(self):
        total = OpCounts(alu=1) + OpCounts(alu=2, calls=3)
        assert total.alu == 3
        assert total.calls == 3

    def test_scaled(self):
        assert OpCounts(alu=2).scaled(10).alu == 20

    def test_scaled_rejects_negative(self):
        with pytest.raises(ConfigError):
            OpCounts().scaled(-1)

    def test_time_positive(self):
        assert XEON_E5_2620.time_ms(OpCounts(alu=1e9)) > 0

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            CPUConfig(clock_ghz=0)


class TestSpMV:
    def test_matches_scipy(self):
        g = random_graph(300, seed=2)
        x = np.random.default_rng(3).random(g.n_nodes)
        run = spmv_serial(g, x)
        expected = g.to_scipy() @ x
        np.testing.assert_allclose(run.result, expected, rtol=1e-12)

    def test_unweighted_defaults_to_ones(self):
        g = random_graph(50, seed=4, weighted=False)
        x = np.ones(g.n_nodes)
        run = spmv_serial(g, x)
        np.testing.assert_allclose(run.result, g.out_degrees.astype(float))

    def test_shape_check(self):
        g = random_graph(10)
        with pytest.raises(GraphError):
            spmv_serial(g, np.ones(3))

    def test_op_counts_scale_with_nnz(self):
        small = spmv_serial(random_graph(100, seed=1), np.ones(100))
        big = spmv_serial(random_graph(1000, seed=1), np.ones(1000))
        assert big.ops.total > 5 * small.ops.total


class TestSSSP:
    def test_matches_scipy_dijkstra(self):
        g = random_graph(400, seed=5)
        run = sssp_serial(g, source=0)
        expected = dijkstra(g.to_scipy(), indices=0)
        np.testing.assert_allclose(run.result, expected)

    def test_unreachable_nodes_are_inf(self):
        g = CSRGraph.from_edges(3, np.array([0]), np.array([1]))
        run = sssp_serial(g, 0)
        assert run.result[2] == np.inf

    def test_source_distance_zero(self):
        g = random_graph(100, seed=6)
        assert sssp_serial(g, 17).result[17] == 0.0

    def test_meta_reports_rounds(self):
        g = random_graph(100, seed=7)
        run = sssp_serial(g)
        assert run.meta["rounds"] >= 1
        assert run.meta["edges_relaxed"] > 0

    def test_rejects_negative_weights(self):
        g = random_graph(10, seed=8)
        g.weights[0] = -1.0
        with pytest.raises(GraphError):
            sssp_serial(g)

    def test_rejects_bad_source(self):
        with pytest.raises(GraphError):
            sssp_serial(random_graph(10), source=100)


def simple_graph(n=150, n_edges=800, seed=0):
    """Duplicate-free directed graph (networkx collapses parallel edges,
    while our CSR keeps them, so comparisons need simple graphs)."""
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < n_edges:
        s, t = rng.integers(0, n, size=2)
        if s != t:
            edges.add((int(s), int(t)))
    src, dst = map(np.array, zip(*sorted(edges)))
    return CSRGraph.from_edges(n, src, dst)


class TestPageRank:
    def test_matches_networkx(self):
        g = simple_graph(150, 800, seed=9)
        run = pagerank_serial(g, n_iters=100, tol=1e-12)
        expected = nx.pagerank(g.to_networkx(), alpha=0.85, max_iter=200,
                               tol=1e-12)
        expected_arr = np.array([expected[i] for i in range(g.n_nodes)])
        np.testing.assert_allclose(run.result, expected_arr, atol=1e-8)

    def test_ranks_sum_to_one(self):
        g = wiki_vote_like(seed=1)
        run = pagerank_serial(g, n_iters=30)
        assert run.result.sum() == pytest.approx(1.0, abs=1e-9)

    def test_tolerance_stops_early(self):
        g = random_graph(100, seed=10, weighted=False)
        run = pagerank_serial(g, n_iters=500, tol=1e-10)
        assert run.meta["iterations"] < 500

    def test_validation(self):
        g = random_graph(10)
        with pytest.raises(GraphError):
            pagerank_serial(g, damping=1.5)
        with pytest.raises(GraphError):
            pagerank_serial(g, n_iters=0)


class TestBC:
    def test_matches_networkx(self):
        # duplicate-free small graph
        rng = np.random.default_rng(11)
        n = 60
        edges = set()
        while len(edges) < 300:
            s, t = rng.integers(0, n, size=2)
            if s != t:
                edges.add((int(s), int(t)))
        src, dst = map(np.array, zip(*sorted(edges)))
        g = CSRGraph.from_edges(n, src, dst)
        run = bc_serial(g)
        expected = nx.betweenness_centrality(g.to_networkx(), normalized=False)
        expected_arr = np.array([expected[i] for i in range(n)])
        np.testing.assert_allclose(run.result, expected_arr, atol=1e-9)

    def test_sampled_sources(self):
        g = random_graph(100, seed=12, weighted=False)
        run = bc_serial(g, sources=np.arange(10))
        assert run.meta["n_sources"] == 10
        assert np.all(run.result >= 0)

    def test_source_range_check(self):
        with pytest.raises(GraphError):
            bc_serial(random_graph(10), sources=np.array([99]))

    def test_star_graph_center(self):
        # star: all paths pass through the hub
        n = 10
        src = np.concatenate([np.zeros(n - 1, dtype=int), np.arange(1, n)])
        dst = np.concatenate([np.arange(1, n), np.zeros(n - 1, dtype=int)])
        g = CSRGraph.from_edges(n, src, dst)
        run = bc_serial(g)
        assert run.result[0] == pytest.approx((n - 1) * (n - 2))
        np.testing.assert_allclose(run.result[1:], 0.0)


class TestBFS:
    def test_matches_networkx_levels(self):
        g = random_graph(200, seed=13, weighted=False)
        run = bfs_serial(g, 0)
        lengths = nx.single_source_shortest_path_length(g.to_networkx(), 0)
        for node in range(g.n_nodes):
            expected = lengths.get(node, -1)
            assert run.result[node] == expected

    def test_recursive_exact_matches_iterative(self):
        g = random_graph(200, seed=14, weighted=False)
        it = bfs_serial(g, 0)
        rec = bfs_recursive_serial(g, 0, exact_limit=100_000)
        assert rec.meta["exact"]
        np.testing.assert_array_equal(rec.result, it.result)
        # unordered DFS is not work-efficient: it revisits nodes
        assert rec.meta["visits"] >= np.count_nonzero(it.result >= 0)

    def test_recursive_modeled_by_default(self):
        g = uniform_random_graph(2000, (8, 16), seed=15)
        rec = bfs_recursive_serial(g, 0)
        assert not rec.meta["exact"]
        assert 1.25 <= rec.meta["modeled_speedup"] <= 3.3
        it = bfs_serial(g, 0)
        # the modeled recursive baseline is FASTER than iterative (paper)
        assert rec.ops.total < it.ops.total

    def test_speedup_interpolation(self):
        assert recursive_bfs_cpu_speedup(1_600_000) == pytest.approx(1.25)
        assert recursive_bfs_cpu_speedup(27_000_000) == pytest.approx(3.3)
        assert recursive_bfs_cpu_speedup(100) == 1.25
        mid = recursive_bfs_cpu_speedup(8_000_000)
        assert 1.25 < mid < 3.3
