"""Structural tests of the CUDA template code generator."""

import re

import pytest

from repro.core.codegen import SUPPORTED_TEMPLATES, LoopNestSpec, generate_cuda
from repro.core.params import TemplateParams
from repro.errors import PlanError


@pytest.fixture
def spec():
    return LoopNestSpec(
        name="spmv",
        outer_size_expr="n_rows",
        trip_count_expr="row_offsets[i + 1] - row_offsets[i]",
        body="y[i] += vals[row_offsets[i] + j] * x[cols[row_offsets[i] + j]];",
        args=["const int *row_offsets", "const int *cols",
              "const double *vals", "const double *x", "double *y",
              "int n_rows"],
    )


def kernels_in(code: str) -> list[str]:
    return re.findall(r"__global__ void (\w+)", code)


def launches_in(code: str) -> int:
    return len(re.findall(r"<<<", code))


class TestAllTemplates:
    @pytest.mark.parametrize("template", SUPPORTED_TEMPLATES)
    def test_generates_valid_structure(self, spec, template):
        code = generate_cuda(spec, template)
        assert f"template: {template}" in code
        assert kernels_in(code), template
        assert launches_in(code) >= 1
        # the user's body text survives verbatim
        assert "y[i] += vals[" in code
        # braces balance (cheap well-formedness check)
        assert code.count("{") == code.count("}")

    def test_unknown_template(self, spec):
        with pytest.raises(PlanError, match="no code generator"):
            generate_cuda(spec, "magic")


class TestTemplateSpecifics:
    def test_baseline_single_kernel(self, spec):
        code = generate_cuda(spec, "baseline")
        assert len(kernels_in(code)) == 1
        assert "blockIdx.x * blockDim.x + threadIdx.x" in code

    def test_block_mapped_uses_block_index(self, spec):
        code = generate_cuda(spec, "block-mapped")
        assert "int i = blockIdx.x;" in code
        assert "j += blockDim.x" in code

    def test_dual_queue_three_kernels(self, spec):
        code = generate_cuda(spec, "dual-queue")
        assert len(kernels_in(code)) == 3
        assert "atomicAdd(large_tail" in code

    def test_dbuf_global_two_kernels(self, spec):
        code = generate_cuda(spec, "dbuf-global")
        names = kernels_in(code)
        assert len(names) == 2
        assert any("phase1" in n for n in names)
        assert any("phase2" in n for n in names)

    def test_dbuf_shared_single_kernel_with_shared_buffer(self, spec):
        code = generate_cuda(spec, "dbuf-shared")
        assert len(kernels_in(code)) == 1
        assert "__shared__ int sbuf" in code
        assert "__syncthreads()" in code

    def test_dpar_naive_nested_launch_from_thread(self, spec):
        code = generate_cuda(spec, "dpar-naive")
        assert "spmv_child<<<1," in code.replace(" ", "")

    def test_dpar_opt_single_launch_per_block(self, spec):
        code = generate_cuda(spec, "dpar-opt")
        assert "threadIdx.x == 0 && stail > 0" in code
        assert "<<<stail," in code.replace(" ", "")

    def test_threshold_embedded(self, spec):
        code = generate_cuda(spec, "dbuf-shared",
                             TemplateParams(lb_threshold=77))
        assert "> 77" in code

    def test_block_sizes_embedded(self, spec):
        code = generate_cuda(spec, "dual-queue",
                             TemplateParams(lb_block=96))
        assert "96" in code


class TestLoopNestSpec:
    def test_arg_helpers(self, spec):
        assert spec.arg_list().startswith("const int *row_offsets")
        names = spec.arg_names()
        assert "row_offsets" in names
        assert "*" not in names

    def test_defaults(self):
        spec = LoopNestSpec()
        code = generate_cuda(spec, "baseline")
        assert "kernel_thread" in code
