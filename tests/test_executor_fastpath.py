"""Fast-engine equivalence suite + plan-cache behavior tests.

The cohort-batched fast engine must reproduce the reference
event-per-block engine's cycle counts to 1e-6 relative on every template,
across workload shapes that stress different scheduling paths: uniform
(maximal cohorts), power-law (mixed phases, nested launches), and a
single hot iteration (one giant block-mapped/nested unit among trivial
ones).
"""

import numpy as np
import pytest

from repro.core import (
    AccessStream,
    NestedLoopWorkload,
    RecursiveTreeWorkload,
    TemplateParams,
)
from repro.core.plancache import PlanCache, default_cache, set_plan_cache_enabled
from repro.core.registry import ALL_TEMPLATES, resolve
from repro.errors import ConfigError
from repro.gpusim import KEPLER_K20
from repro.gpusim.executor import (
    ENGINES,
    GpuExecutor,
    get_default_engine,
    set_default_engine,
)
from repro.trees.generator import generate_tree

NESTED_NAMES = sorted(n for n, (k, _) in ALL_TEMPLATES.items() if k == "nested-loop")
TREE_NAMES = sorted(n for n, (k, _) in ALL_TEMPLATES.items() if k == "tree")
SHAPES = ("uniform", "power", "hot")


def _trips(shape: str) -> np.ndarray:
    rng = np.random.default_rng(7)
    if shape == "uniform":
        return np.full(900, 24, dtype=np.int64)
    if shape == "power":
        return rng.zipf(1.8, size=900).clip(max=500).astype(np.int64)
    # one hot iteration among trivially small ones
    trips = np.full(900, 2, dtype=np.int64)
    trips[137] = 2500
    return trips


def _workload(shape: str) -> NestedLoopWorkload:
    trips = _trips(shape)
    nnz = int(trips.sum())
    rng = np.random.default_rng(11)
    streams = [
        AccessStream("seq", np.arange(nnz, dtype=np.int64) * 4),
        AccessStream("gather", rng.integers(0, nnz, size=nnz) * 4),
        AccessStream("scatter", rng.integers(0, nnz, size=nnz) * 4,
                     "store", 4, staged_in_shared=True),
    ]
    return NestedLoopWorkload(name=f"eq-{shape}", trip_counts=trips,
                              streams=streams)


@pytest.fixture(scope="module")
def workloads():
    return {shape: _workload(shape) for shape in SHAPES}


@pytest.fixture(scope="module")
def tree_workloads():
    tree = generate_tree(depth=7, outdegree=4, sparsity=0.4, seed=3)
    return {
        kind: RecursiveTreeWorkload(tree, kind)
        for kind in ("descendants", "heights")
    }


def _run_both(template, workload, params=None):
    exact = template.run(
        workload, KEPLER_K20, params,
        executor=GpuExecutor(KEPLER_K20, engine="exact"),
    )
    fast = template.run(
        workload, KEPLER_K20, params,
        executor=GpuExecutor(KEPLER_K20, engine="fast"),
    )
    return exact, fast


class TestEngineEquivalence:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("name", NESTED_NAMES)
    def test_nested_loop_templates(self, workloads, name, shape):
        exact, fast = _run_both(resolve(name), workloads[shape])
        assert fast.time_ms == pytest.approx(exact.time_ms, rel=1e-6)

    @pytest.mark.parametrize("kind", ("descendants", "heights"))
    @pytest.mark.parametrize("name", TREE_NAMES)
    def test_tree_templates(self, tree_workloads, name, kind):
        exact, fast = _run_both(resolve(name), tree_workloads[kind])
        assert fast.time_ms == pytest.approx(exact.time_ms, rel=1e-6)

    def test_timeline_matches_too(self, workloads):
        template = resolve("dbuf-global")
        graph, _ = template.build(workloads["power"], KEPLER_K20,
                                  TemplateParams())
        exact = GpuExecutor(KEPLER_K20, engine="exact").run(graph)
        fast = GpuExecutor(KEPLER_K20, engine="fast").run(graph)
        assert fast.n_launches == exact.n_launches
        assert fast.n_device_launches == exact.n_device_launches
        assert fast.time_ms == pytest.approx(exact.time_ms, rel=1e-6)


class TestEngineSelection:
    def test_engines_listed(self):
        assert set(ENGINES) == {"fast", "exact"}

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            GpuExecutor(KEPLER_K20, engine="warp9")
        with pytest.raises(ConfigError, match="unknown engine"):
            set_default_engine("warp9")

    def test_default_engine_roundtrip(self):
        before = get_default_engine()
        try:
            set_default_engine("exact")
            assert get_default_engine() == "exact"
        finally:
            set_default_engine(before)
        assert get_default_engine() == before


class TestPlanCacheUnit:
    def test_hit_miss_counters(self):
        cache = PlanCache(maxsize=4)
        assert cache.get(("k",)) is None
        cache.put(("k",), "plan")
        assert cache.get(("k",)) == "plan"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1   # refresh a; b is now oldest
        cache.put(("c",), 3)
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 1
        assert cache.get(("c",)) == 3

    def test_disabled_cache_stores_nothing(self):
        cache = PlanCache(enabled=False)
        cache.put(("k",), "plan")
        assert cache.get(("k",)) is None
        assert len(cache) == 0

    def test_bad_maxsize(self):
        with pytest.raises(ConfigError):
            PlanCache(maxsize=0)


class TestPlanCacheIntegration:
    def _fresh_stats(self):
        stats = default_cache().stats
        return stats.hits, stats.misses

    def test_repeat_run_hits(self, workloads):
        wl = workloads["power"]
        template = resolve("dbuf-shared")
        template.run(wl, KEPLER_K20)        # warm (hit or miss, don't care)
        h0, m0 = self._fresh_stats()
        template.run(wl, KEPLER_K20)
        h1, m1 = self._fresh_stats()
        assert (h1 - h0, m1 - m0) == (1, 0)

    def test_plan_relevant_param_change_misses(self, workloads):
        wl = workloads["power"]
        template = resolve("dbuf-shared")
        template.run(wl, KEPLER_K20, TemplateParams(lb_threshold=48))
        h0, m0 = self._fresh_stats()
        template.run(wl, KEPLER_K20, TemplateParams(lb_threshold=49))
        h1, m1 = self._fresh_stats()
        assert m1 - m0 == 1

    def test_irrelevant_param_change_still_hits(self, workloads):
        wl = workloads["uniform"]
        template = resolve("thread-mapped")   # never reads streams_per_block
        template.run(wl, KEPLER_K20, TemplateParams(streams_per_block=1))
        h0, m0 = self._fresh_stats()
        template.run(wl, KEPLER_K20, TemplateParams(streams_per_block=2))
        h1, m1 = self._fresh_stats()
        assert (h1 - h0, m1 - m0) == (1, 0)

    def test_workload_content_change_misses(self):
        template = resolve("thread-mapped")
        a = _workload("uniform")
        b = _workload("uniform")
        assert a.fingerprint() == b.fingerprint()   # same content, same key
        trips = _trips("uniform")
        trips[0] += 1
        c = NestedLoopWorkload(name=a.name, trip_counts=trips)
        assert c.fingerprint() != a.fingerprint()

    def test_disable_enable_roundtrip(self, workloads):
        wl = workloads["hot"]
        template = resolve("block-mapped")
        try:
            set_plan_cache_enabled(False)
            template.run(wl, KEPLER_K20)
            h0, m0 = self._fresh_stats()
            template.run(wl, KEPLER_K20)
            h1, _ = self._fresh_stats()
            assert h1 - h0 == 0           # nothing was stored
        finally:
            set_plan_cache_enabled(True)
