"""Accounting invariants: service stats, pool counters, plan-cache reset,
autotune tie-breaking.

The service scenarios reuse the fault-injection harness from
``test_service_faults``: crashing/hanging ``run_fn`` stand-ins and
thread-backed worker pools, so every reject/crash/timeout/degrade path is
exercised without real child processes.  After each scenario the books
must balance::

    submitted == served + admission_rejected
    served    == succeeded + failed + drain_rejected
    pool.submitted == completed + crashes + timeouts + failures
"""

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.autotune import autotune, best_run
from repro.core.params import TemplateParams
from repro.core.plancache import default_cache, set_plan_cache_enabled
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.errors import PlanError
from repro.gpusim.config import KEPLER_K20
from repro.service import (
    BatchSpec,
    ServiceConfig,
    TemplateService,
    WorkerPool,
    WorkerTimeoutError,
    execute_batch,
)


def make_workload(name="inv-wl", outer=600, seed=11):
    rng = np.random.default_rng(seed)
    trips = rng.zipf(1.8, size=outer).clip(max=80).astype(np.int64)
    nnz = int(trips.sum())
    return NestedLoopWorkload(
        name=name, trip_counts=trips,
        streams=[AccessStream("x", rng.integers(0, nnz, size=nnz) * 4)],
    )


@pytest.fixture(scope="module")
def workload():
    return make_workload()


FAST_RETRY = dict(max_retries=2, retry_backoff_s=0.001)


def run_service(scenario, config=None, **service_kwargs):
    async def driver():
        service = TemplateService(config, **service_kwargs)
        await service.start()
        try:
            return await scenario(service)
        finally:
            await service.stop()
    return asyncio.run(driver())


def assert_books_balance(service):
    violations = service.stats.invariant_violations()
    assert violations == [], "\n".join(violations)
    snap = service.snapshot()["requests"]
    assert snap["rejected"] == \
        snap["admission_rejected"] + snap["drain_rejected"]


class TestServiceInvariants:
    def test_mixed_success_crash_degrade_timeout(self, workload):
        """One scenario through every terminal path; the books balance."""
        calls = {"hangs": 0}

        def chaos(spec):
            name = spec.template if isinstance(spec.template, str) else ""
            if name.startswith("dpar"):
                raise RuntimeError("injected dynpar crash")   # -> degrade
            if name == "dbuf-shared":
                raise RuntimeError("injected hard crash")     # -> failed
            if name == "dbuf-global" and calls["hangs"] == 0:
                calls["hangs"] += 1
                time.sleep(0.3)                               # -> timeout
            return execute_batch(spec)

        async def scenario(service):
            responses = await asyncio.gather(
                service.submit("dual-queue", workload),   # ok
                service.submit("dpar-opt", workload),     # ok (degraded)
                service.submit("dbuf-shared", workload),  # failed
                service.submit("dbuf-global", workload),  # timeout, then ok
            )
            assert_books_balance(service)
            return responses, service.snapshot()["requests"]

        responses, snap = run_service(
            scenario,
            ServiceConfig(request_timeout_s=0.05, **FAST_RETRY),
            run_fn=chaos,
        )
        statuses = sorted(r.status for r in responses)
        assert statuses == ["failed", "ok", "ok", "ok"]
        assert snap["submitted"] == snap["served"] == 4
        assert snap["succeeded"] == 3
        assert snap["failed"] == 1
        assert snap["degraded"] == 1
        assert snap["timeouts"] == 1
        assert snap["admission_rejected"] == snap["drain_rejected"] == 0

    def test_admission_rejects_split_from_drain(self, workload):
        """Over-limit submissions count as admission rejects, nothing else."""
        def slow(spec):
            time.sleep(0.05)
            return execute_batch(spec)

        async def scenario(service):
            tasks = [
                asyncio.create_task(service.submit("dual-queue", workload))
                for _ in range(8)
            ]
            responses = await asyncio.gather(*tasks)
            assert_books_balance(service)
            return responses, service.snapshot()["requests"]

        responses, snap = run_service(
            scenario,
            ServiceConfig(max_pending=2, batch_window_s=0.0, **FAST_RETRY),
            run_fn=slow,
        )
        rejected = [r for r in responses if r.status == "rejected"]
        assert len(rejected) == 6
        assert all("queue full" in r.reason for r in rejected)
        assert snap["submitted"] == 8
        assert snap["admission_rejected"] == 6
        assert snap["drain_rejected"] == 0
        assert snap["served"] == snap["succeeded"] == 2
        assert snap["rejected"] == 6  # back-compat aggregate

    def test_stop_mid_window_counts_drain_rejects(self, workload):
        """Requests caught inside an open collection window are answered
        (drain-rejected), not silently dropped."""
        async def driver():
            service = TemplateService(ServiceConfig(batch_window_s=1.0))
            await service.start()
            tasks = [
                asyncio.create_task(service.submit("dual-queue", workload))
                for _ in range(3)
            ]
            await asyncio.sleep(0.05)  # let the window open and collect
            await service.stop(drain=False)
            responses = await asyncio.gather(*tasks)
            assert_books_balance(service)
            return responses, service.snapshot()["requests"]

        responses, snap = asyncio.run(driver())
        assert [r.status for r in responses] == ["rejected"] * 3
        assert all("stopped" in r.reason for r in responses)
        assert snap["drain_rejected"] == 3
        assert snap["admission_rejected"] == 0
        assert snap["submitted"] == snap["served"] == 3


class TestPoolInvariants:
    spec_of = staticmethod(lambda wl: BatchSpec(
        template="dual-queue", workload=wl, kind="nested-loop"))

    def test_plain_failure_is_counted(self, workload):
        """run_fn raising keeps the worker alive but must still settle
        the submission — in ``failures``, not silently."""
        def boom(spec):
            raise PlanError("injected batch failure")

        pool = WorkerPool(
            max_workers=1,
            executor_factory=lambda n: ThreadPoolExecutor(n),
            run_fn=boom,
        )

        async def driver():
            with pytest.raises(PlanError):
                await pool.run(self.spec_of(workload), timeout_s=1.0)

        asyncio.run(driver())
        snap = pool.snapshot()
        assert snap["failures"] == 1
        assert snap["crashes"] == 0
        assert pool.invariant_violations() == []
        pool.shutdown()

    def test_mixed_outcomes_reconcile(self, workload):
        calls = {"n": 0}

        def mixed(spec):
            calls["n"] += 1
            if calls["n"] == 1:
                raise PlanError("failure")
            if calls["n"] == 2:
                time.sleep(0.3)  # timeout
            return execute_batch(spec)

        pool = WorkerPool(
            max_workers=1,
            executor_factory=lambda n: ThreadPoolExecutor(n),
            run_fn=mixed,
        )

        async def driver():
            spec = self.spec_of(workload)
            with pytest.raises(PlanError):
                await pool.run(spec, timeout_s=1.0)
            with pytest.raises(WorkerTimeoutError):
                await pool.run(spec, timeout_s=0.02)
            await pool.run(spec, timeout_s=None)

        asyncio.run(driver())
        snap = pool.snapshot()
        assert snap["submitted"] == 3
        assert (snap["completed"], snap["failures"], snap["timeouts"]) == \
            (1, 1, 1)
        assert pool.invariant_violations() == []
        pool.shutdown()


class TestPlanCacheReset:
    @pytest.fixture(autouse=True)
    def cache_enabled(self):
        set_plan_cache_enabled(True)
        yield
        set_plan_cache_enabled(True)

    def test_disable_resets_counters_and_entries(self):
        import repro

        wl = make_workload(name="inv-cache")
        repro.run(wl, "dbuf-shared")
        repro.run(wl, "dbuf-shared")
        cache = default_cache()
        assert cache.stats.hits >= 1 and len(cache) >= 1

        set_plan_cache_enabled(False)
        assert len(cache) == 0
        assert (cache.stats.hits, cache.stats.misses) == (0, 0)

        # a re-enabled cache starts genuinely cold: zero hit rate, then
        # the usual miss/hit sequence from scratch
        set_plan_cache_enabled(True)
        assert cache.stats.hit_rate == 0.0
        hits0, misses0 = cache.stats.hits, cache.stats.misses
        repro.run(wl, "dbuf-shared")
        repro.run(wl, "dbuf-shared")
        assert cache.stats.misses - misses0 == 1
        assert cache.stats.hits - hits0 == 1


class TestAutotuneDeterminism:
    def test_best_run_breaks_ties_on_template_then_threshold(self):
        def fake(template, lbt, time_ms=5.0):
            return SimpleNamespace(
                template=template, time_ms=time_ms,
                params=TemplateParams(lb_threshold=lbt))

        runs = [fake("dual-queue", 128), fake("dbuf-shared", 64),
                fake("dbuf-shared", 32)]
        assert best_run(runs).template == "dbuf-shared"
        assert best_run(runs).params.lb_threshold == 32
        assert best_run(reversed(runs)) is best_run(runs)
        # time still dominates the tie-break
        runs.append(fake("zz-last", 256, time_ms=1.0))
        assert best_run(runs).template == "zz-last"

    def test_best_run_rejects_empty(self):
        with pytest.raises(PlanError):
            best_run([])

    def test_autotune_is_order_insensitive(self):
        # thresholds above every trip count yield identical plans (and
        # bit-equal simulated times) — exactly the tie the deterministic
        # key must resolve the same way regardless of sweep order
        wl = make_workload(name="inv-tune", outer=200, seed=4)
        templates = ("dbuf-shared", "dual-queue")
        a = autotune(wl, KEPLER_K20, templates=templates,
                     thresholds=(512, 1024))
        b = autotune(wl, KEPLER_K20, templates=tuple(reversed(templates)),
                     thresholds=(1024, 512))
        assert (a.template, a.params.lb_threshold) == \
            (b.template, b.params.lb_threshold)
