"""Tests for the tree substrate: structure, generator, metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DatasetError, GraphError
from repro.trees.generator import (
    branch_probability,
    expected_level_sizes,
    generate_tree,
)
from repro.trees.metrics import (
    ancestor_pairs,
    flat_atomic_count,
    node_heights,
    rec_hier_kernel_calls,
    rec_naive_kernel_calls,
    subtree_sizes,
)
from repro.trees.structure import Tree


class TestStructure:
    def test_minimal_tree(self):
        t = Tree(
            parents=np.array([-1]),
            level_offsets=np.array([0, 1]),
            child_offsets=np.array([0, 0]),
            children=np.array([], dtype=np.int64),
        )
        assert t.n_nodes == 1
        assert t.depth == 1
        assert t.n_leaves == 1

    def test_three_level_tree(self):
        # 0 -> 1,2 ; 1 -> 3
        t = Tree(
            parents=np.array([-1, 0, 0, 1]),
            level_offsets=np.array([0, 1, 3, 4]),
            child_offsets=np.array([0, 2, 3, 3, 3]),
            children=np.array([1, 2, 3]),
        )
        assert t.depth == 3
        assert t.children_of(0).tolist() == [1, 2]
        assert t.children_of(1).tolist() == [3]
        assert t.levels.tolist() == [0, 1, 1, 2]
        assert t.level_nodes(1).tolist() == [1, 2]
        assert t.level_size(1) == 2
        assert t.n_internal == 2

    def test_rejects_two_roots(self):
        with pytest.raises(GraphError):
            Tree(
                parents=np.array([-1, -1]),
                level_offsets=np.array([0, 2]),
                child_offsets=np.array([0, 0, 0]),
                children=np.array([], dtype=np.int64),
            )

    def test_rejects_wrong_edge_count(self):
        with pytest.raises(GraphError):
            Tree(
                parents=np.array([-1, 0]),
                level_offsets=np.array([0, 1, 2]),
                child_offsets=np.array([0, 0, 0]),
                children=np.array([], dtype=np.int64),
            )

    def test_rejects_inconsistent_children(self):
        with pytest.raises(GraphError):
            Tree(
                parents=np.array([-1, 0, 1]),
                level_offsets=np.array([0, 1, 2, 3]),
                child_offsets=np.array([0, 2, 2, 2]),
                children=np.array([1, 2]),  # claims 2 is a child of 0
            )

    def test_level_out_of_range(self):
        t = generate_tree(2, 2)
        with pytest.raises(GraphError):
            t.level_nodes(5)


class TestGenerator:
    def test_regular_tree_shape(self):
        t = generate_tree(depth=4, outdegree=3, sparsity=0.0)
        assert t.n_nodes == 1 + 3 + 9 + 27
        assert t.depth == 4
        assert [t.level_size(i) for i in range(4)] == [1, 3, 9, 27]
        # all non-leaf nodes have exactly `outdegree` children
        deg = t.out_degrees
        assert set(deg.tolist()) == {0, 3}

    def test_depth_one(self):
        t = generate_tree(1, 5)
        assert t.n_nodes == 1

    def test_sparsity_zero_is_full(self):
        assert branch_probability(0) == 1.0
        t = generate_tree(3, 4, sparsity=0.0)
        assert t.n_nodes == 1 + 4 + 16

    def test_sparsity_prunes(self):
        full = generate_tree(5, 4, sparsity=0.0, seed=1)
        sparse = generate_tree(5, 4, sparsity=2.0, seed=1)
        assert sparse.n_nodes < full.n_nodes

    def test_branch_probability_values(self):
        assert branch_probability(1) == 0.5
        assert branch_probability(4) == 0.0625
        with pytest.raises(DatasetError):
            branch_probability(-1)

    def test_expected_sizes_statistically(self):
        sizes = np.zeros(4)
        n_trials = 30
        for s in range(n_trials):
            t = generate_tree(4, 8, sparsity=1.0, seed=s)
            for lvl in range(t.depth):
                sizes[lvl] += t.level_size(lvl)
        sizes /= n_trials
        expected = expected_level_sizes(4, 8, 1.0)
        # root always branches; deeper levels are rho-thinned
        assert sizes[1] == pytest.approx(expected[1])
        assert sizes[2] == pytest.approx(expected[2], rel=0.35)

    def test_max_nodes_guard(self):
        with pytest.raises(DatasetError, match="max_nodes"):
            generate_tree(4, 512, sparsity=0.0)  # 135M nodes

    def test_determinism(self):
        a = generate_tree(4, 6, sparsity=1.0, seed=42)
        b = generate_tree(4, 6, sparsity=1.0, seed=42)
        assert np.array_equal(a.parents, b.parents)

    def test_validation(self):
        with pytest.raises(DatasetError):
            generate_tree(0, 4)
        with pytest.raises(DatasetError):
            generate_tree(3, 0)


class TestMetrics:
    def test_ancestor_pairs_full_tree(self):
        t = generate_tree(4, 3, sparsity=0.0)
        # 3*1 + 9*2 + 27*3 = 102
        assert ancestor_pairs(t) == 102
        assert flat_atomic_count(t) == 102

    def test_paper_closed_forms_at_scale(self):
        # the paper's full-scale counts, computed from the closed forms the
        # generator obeys (without materializing a 134M-node tree)
        d = 512
        pairs = d * 1 + d**2 * 2 + d**3 * 3
        assert pairs == 403_177_984  # "403 m" in Fig. 7(c)
        naive_calls = 1 + d + d**2
        assert naive_calls == 262_657  # "263k"
        hier_calls = 1 + d
        assert hier_calls == 513  # "513"

    def test_rec_naive_calls_small(self):
        t = generate_tree(4, 3, sparsity=0.0)
        # 1 + internal-below-root = 1 + 3 + 9
        assert rec_naive_kernel_calls(t) == 13

    def test_rec_hier_calls_small(self):
        t = generate_tree(4, 3, sparsity=0.0)
        # 1 + nodes below root with grandchildren = 1 + 3
        assert rec_hier_kernel_calls(t) == 4

    def test_subtree_sizes_regular(self):
        t = generate_tree(3, 2, sparsity=0.0)
        sizes = subtree_sizes(t)
        assert sizes[0] == 7
        assert sizes[1] == sizes[2] == 3
        assert np.all(sizes[3:] == 1)

    def test_node_heights_regular(self):
        t = generate_tree(3, 2, sparsity=0.0)
        h = node_heights(t)
        assert h[0] == 3
        assert h[1] == h[2] == 2
        assert np.all(h[3:] == 1)

    def test_matches_recursive_oracle(self):
        from repro.cpu.trees import descendants_recursive_py, heights_recursive_py

        for seed in range(3):
            t = generate_tree(5, 3, sparsity=1.0, seed=seed)
            assert np.array_equal(subtree_sizes(t), descendants_recursive_py(t))
            assert np.array_equal(node_heights(t), heights_recursive_py(t))

    @given(st.integers(2, 5), st.integers(1, 5), st.integers(0, 3), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_invariants(self, depth, outdegree, sparsity, seed):
        t = generate_tree(depth, outdegree, float(sparsity), seed=seed)
        sizes = subtree_sizes(t)
        # the root's subtree is the whole tree
        assert sizes[0] == t.n_nodes
        # subtree sizes sum to ancestor pairs + n (each node counted once
        # per ancestor-or-self)
        assert int(sizes.sum()) == ancestor_pairs(t) + t.n_nodes
        h = node_heights(t)
        assert h[0] == t.depth or t.n_nodes == 1
        assert np.all(h >= 1)
        # kernel-call counts are bounded by node counts
        assert rec_hier_kernel_calls(t) <= rec_naive_kernel_calls(t) + 1
        assert rec_naive_kernel_calls(t) <= t.n_nodes + 1
