"""Tests for AppRun and multi-round metric aggregation."""

import numpy as np
import pytest

from repro.apps.base import AppRun, combine_rounds
from repro.core import NestedLoopWorkload, TemplateParams, resolve
from repro.core.workload import AccessStream
from repro.gpusim import KEPLER_K20
from repro.gpusim.profiler import ProfileMetrics


def make_run(seed=0, n=500):
    rng = np.random.default_rng(seed)
    trips = rng.integers(0, 40, size=n)
    nnz = int(trips.sum())
    wl = NestedLoopWorkload(
        name="wl", trip_counts=trips,
        streams=[AccessStream("g", rng.integers(0, nnz, size=nnz) * 4)],
    )
    return resolve("baseline", kind="nested-loop").run(wl, KEPLER_K20, TemplateParams())


class TestAppRun:
    def test_speedup(self):
        run = AppRun(
            app="a", template="t", dataset="d", result=np.zeros(1),
            gpu_time_ms=2.0, cpu_time_ms=8.0,
            metrics=ProfileMetrics(1, 1, 1, 0.5, 0, 1, 0, 2.0, 0.5),
        )
        assert run.speedup == pytest.approx(4.0)

    def test_zero_gpu_time_is_infinite_speedup(self):
        run = AppRun(
            app="a", template="t", dataset="d", result=np.zeros(1),
            gpu_time_ms=0.0, cpu_time_ms=8.0,
            metrics=ProfileMetrics(1, 1, 1, 0.5, 0, 1, 0, 0.0, 0.5),
        )
        assert run.speedup == float("inf")


class TestCombineRounds:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_rounds([])

    def test_single_round_is_identity(self):
        run = make_run(seed=1)
        total, metrics = combine_rounds([run])
        assert total == pytest.approx(run.time_ms)
        assert metrics.warp_execution_efficiency == pytest.approx(
            run.metrics.warp_execution_efficiency
        )
        assert metrics.kernel_calls == run.metrics.kernel_calls

    def test_times_sum(self):
        a, b = make_run(seed=2), make_run(seed=3)
        total, _ = combine_rounds([a, b])
        assert total == pytest.approx(a.time_ms + b.time_ms)

    def test_counters_sum(self):
        a, b = make_run(seed=4), make_run(seed=5)
        _, metrics = combine_rounds([a, b])
        assert metrics.kernel_calls == (
            a.metrics.kernel_calls + b.metrics.kernel_calls
        )
        assert metrics.atomic_ops == a.metrics.atomic_ops + b.metrics.atomic_ops

    def test_efficiency_is_work_weighted(self):
        a, b = make_run(seed=6), make_run(seed=7)
        _, metrics = combine_rounds([a, b])
        lo = min(a.metrics.warp_execution_efficiency,
                 b.metrics.warp_execution_efficiency)
        hi = max(a.metrics.warp_execution_efficiency,
                 b.metrics.warp_execution_efficiency)
        assert lo <= metrics.warp_execution_efficiency <= hi

    def test_occupancy_bounded(self):
        runs = [make_run(seed=s) for s in range(3)]
        _, metrics = combine_rounds(runs)
        assert 0.0 <= metrics.warp_occupancy <= 1.0
        assert 0.0 <= metrics.sm_utilization <= 1.0
