"""Fault injection for the serving layer.

Crashing and hanging workers are monkeypatched ``run_fn``s (and, for the
pool route, a thread-backed executor factory), so every retry/timeout/
degradation path runs without a real child process dying — and without
ever wedging the suite: hangs are short sleeps that outlive only the
configured timeout.
"""

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.errors import ServiceError
from repro.service import (
    BatchSpec,
    ServiceConfig,
    TemplateService,
    WorkerPool,
    WorkerTimeoutError,
    execute_batch,
)


def make_workload(name="fault-wl", outer=800, seed=3):
    rng = np.random.default_rng(seed)
    trips = rng.zipf(1.8, size=outer).clip(max=100).astype(np.int64)
    nnz = int(trips.sum())
    return NestedLoopWorkload(
        name=name, trip_counts=trips,
        streams=[AccessStream("x", rng.integers(0, nnz, size=nnz) * 4)],
    )


@pytest.fixture(scope="module")
def workload():
    return make_workload()


FAST_RETRY = dict(max_retries=2, retry_backoff_s=0.001)


def run_service(scenario, config=None, **service_kwargs):
    async def driver():
        service = TemplateService(config, **service_kwargs)
        await service.start()
        try:
            return await scenario(service)
        finally:
            await service.stop()
    return asyncio.run(driver())


class FlakyRun:
    """run_fn that fails ``failures`` times, then succeeds."""

    def __init__(self, failures: int, exc=RuntimeError("injected crash")):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self, spec):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return execute_batch(spec)


class TestRetry:
    def test_transient_crashes_are_retried(self, workload):
        flaky = FlakyRun(failures=2)

        async def scenario(service):
            return await service.submit("dual-queue", workload)

        response = run_service(
            scenario, ServiceConfig(**FAST_RETRY), run_fn=flaky)
        assert response.ok and not response.degraded
        assert response.attempts == 3
        assert flaky.calls == 3
        expected = repro.run(workload, "dual-queue")
        assert response.time_ms == pytest.approx(expected.time_ms, rel=1e-9)

    def test_retry_counters(self, workload):
        flaky = FlakyRun(failures=1)

        async def scenario(service):
            await service.submit("dual-queue", workload)
            return service.snapshot()

        stats = run_service(
            scenario, ServiceConfig(**FAST_RETRY), run_fn=flaky)
        assert stats["requests"]["retries"] == 1
        assert stats["requests"]["failed"] == 0

    def test_exhausted_retries_fail_with_reason(self, workload):
        always = FlakyRun(failures=10**9, exc=RuntimeError("disk on fire"))

        async def scenario(service):
            return await service.submit("dual-queue", workload), \
                service.snapshot()

        response, stats = run_service(
            scenario, ServiceConfig(**FAST_RETRY), run_fn=always)
        assert response.status == "failed" and not response.ok
        assert "disk on fire" in response.reason
        assert response.attempts == 3  # 1 try + 2 retries
        assert stats["requests"]["failed"] == 1
        assert stats["requests"]["degraded"] == 0


class TestDegradation:
    def test_dynpar_template_degrades_to_thread_mapped(self, workload):
        def crash_dpar(spec):
            if isinstance(spec.template, str) and \
                    spec.template.startswith("dpar"):
                raise RuntimeError("nested launch pool exhausted")
            return execute_batch(spec)

        async def scenario(service):
            return await service.submit("dpar-opt", workload), \
                service.snapshot()

        response, stats = run_service(
            scenario, ServiceConfig(**FAST_RETRY), run_fn=crash_dpar)
        assert response.ok and response.degraded
        # ThreadMappedTemplate's historical .name is "baseline"
        assert response.template == "baseline"
        assert response.route == "inline"
        expected = repro.run(workload, "thread-mapped")
        assert response.time_ms == pytest.approx(expected.time_ms, rel=1e-9)
        assert stats["requests"]["degraded"] == 1
        assert stats["requests"]["succeeded"] == 1
        assert stats["requests"]["failed"] == 0

    def test_tree_dynpar_degrades_to_flat(self):
        from repro.core.recursive import RecursiveTreeWorkload
        from repro.trees.generator import generate_tree
        tree_wl = RecursiveTreeWorkload(
            generate_tree(depth=4, outdegree=3, seed=2), "descendants")

        def crash_rec(spec):
            if isinstance(spec.template, str) and \
                    spec.template.startswith("rec-"):
                raise RuntimeError("recursion depth")
            return execute_batch(spec)

        async def scenario(service):
            return await service.submit("rec-hier", tree_wl)

        response = run_service(
            scenario, ServiceConfig(**FAST_RETRY), run_fn=crash_rec)
        assert response.ok and response.degraded
        assert response.template == "flat"

    def test_degradation_disabled_fails_instead(self, workload):
        def crash_dpar(spec):
            raise RuntimeError("kaboom")

        async def scenario(service):
            return await service.submit("dpar-opt", workload)

        response = run_service(
            scenario, ServiceConfig(degrade=False, **FAST_RETRY),
            run_fn=crash_dpar)
        assert response.status == "failed"
        assert "kaboom" in response.reason

    def test_non_dynpar_template_never_degrades(self, workload):
        def always_crash(spec):
            raise RuntimeError("kaboom")

        async def scenario(service):
            return await service.submit("dbuf-shared", workload)

        response = run_service(
            scenario, ServiceConfig(**FAST_RETRY), run_fn=always_crash)
        assert response.status == "failed" and not response.degraded


class TestTimeouts:
    def test_hanging_inline_run_times_out_without_wedging(self, workload):
        calls = {"n": 0}

        def hang_once(spec):
            calls["n"] += 1
            if calls["n"] == 1:
                time.sleep(0.3)  # far beyond the 0.05s timeout
            return execute_batch(spec)

        async def scenario(service):
            first = await service.submit("dual-queue", workload)
            second = await service.submit("dbuf-global", workload)
            return first, second, service.snapshot()

        first, second, stats = run_service(
            scenario,
            ServiceConfig(request_timeout_s=0.05, max_retries=1,
                          retry_backoff_s=0.001),
            run_fn=hang_once,
        )
        # first request: attempt 1 hung (timeout), retry succeeded
        assert first.ok and first.attempts == 2
        assert stats["requests"]["timeouts"] == 1
        # service is still alive and serving
        assert second.ok

    def test_hang_past_all_retries_fails(self, workload):
        def always_hang(spec):
            time.sleep(0.2)
            return execute_batch(spec)

        async def scenario(service):
            return await service.submit("dual-queue", workload)

        response = run_service(
            scenario,
            ServiceConfig(request_timeout_s=0.02, max_retries=1,
                          retry_backoff_s=0.001),
            run_fn=always_hang,
        )
        assert response.status == "failed"
        assert "Timeout" in response.reason


class TestWorkerPool:
    def test_pool_timeout_recycles(self, workload):
        def hang(spec):
            time.sleep(0.3)
            return execute_batch(spec)

        pool = WorkerPool(
            max_workers=1,
            executor_factory=lambda n: ThreadPoolExecutor(n),
            run_fn=hang,
        )
        spec = BatchSpec(template="dual-queue", workload=workload,
                         kind="nested-loop")

        async def driver():
            with pytest.raises(WorkerTimeoutError):
                await pool.run(spec, timeout_s=0.02)

        asyncio.run(driver())
        assert pool.timeouts == 1
        assert pool.recycles == 1
        pool.shutdown()

    def test_pool_crash_route_degrades_end_to_end(self, workload):
        """A crashing *pool* worker triggers retry-then-degrade."""
        def crash_dpar(spec):
            if isinstance(spec.template, str) and \
                    spec.template.startswith("dpar"):
                raise RuntimeError("worker segfault (simulated)")
            return execute_batch(spec)

        pool = WorkerPool(
            max_workers=1,
            executor_factory=lambda n: ThreadPoolExecutor(n),
            run_fn=crash_dpar,
        )

        async def scenario(service):
            return await service.submit("dpar-opt", workload), \
                service.snapshot()

        response, stats = run_service(
            scenario,
            # everything routes to the pool; the degraded fallback
            # deliberately runs inline (execute_batch via run_fn default)
            ServiceConfig(inline_cost_threshold=0, **FAST_RETRY),
            worker_pool=pool,
        )
        assert response.ok and response.degraded
        assert response.route == "inline"
        assert stats["pool"]["submitted"] == 3  # 1 try + 2 retries
        assert stats["requests"]["degraded"] == 1
        pool.shutdown()

    def test_real_process_pool_roundtrip(self, workload):
        """One real ProcessPoolExecutor execution through the pool route."""
        async def scenario(service):
            return await service.submit("dbuf-global", workload)

        response = run_service(
            scenario,
            ServiceConfig(inline_cost_threshold=0, workers=1),
        )
        assert response.ok and response.route == "pool"
        expected = repro.run(workload, "dbuf-global")
        assert response.time_ms == pytest.approx(expected.time_ms, rel=1e-9)


class TestStopBehaviour:
    def test_stop_answers_queued_requests(self, workload):
        """stop(drain=False) rejects queued work instead of dropping it."""
        def slow(spec):
            time.sleep(0.1)
            return execute_batch(spec)

        async def driver():
            service = TemplateService(
                ServiceConfig(batch_window_s=0.0), run_fn=slow)
            await service.start()
            tasks = [
                asyncio.create_task(service.submit("dual-queue", workload))
                for _ in range(3)
            ]
            await asyncio.sleep(0.02)
            await service.stop(drain=False)
            return await asyncio.gather(*tasks)

        responses = asyncio.run(driver())
        # every submitted request got *an* answer — none hang forever
        assert all(r.status in ("ok", "rejected") for r in responses)


class TestDispatchCrash:
    """Failures the retry loop does not model must never leak futures."""

    def test_malformed_summary_yields_failed_response(self, workload):
        """run_fn returning garbage used to kill the dispatch task,

        leaving the member futures unanswered and ``_pending`` stuck —
        ``stop(drain=True)`` then spun forever.  The dispatch wrapper now
        converts the escaping ``KeyError`` into structured failures.
        """
        def malformed(spec):
            return {}  # no template/time_ms/metrics keys

        async def scenario(service):
            response = await service.submit("dual-queue", workload)
            return response, service.pending, service.snapshot()

        response, pending_after, stats = run_service(
            scenario,
            ServiceConfig(max_retries=0, retry_backoff_s=0.001,
                          drain_timeout_s=1.0),
            run_fn=malformed,
        )
        assert response.status == "failed" and not response.ok
        assert "dispatch error" in response.reason
        assert "KeyError" in response.reason
        assert pending_after == 0  # books un-counted, not leaked
        assert stats["requests"]["failed"] == 1
        assert stats["requests"]["served"] == 1

    def test_crash_during_dispatch_then_drain_stop_returns(self, workload):
        """stop(drain=True) must return promptly after a dispatch crash."""
        def malformed(spec):
            return {"time_ms": None}  # still missing response keys

        async def driver():
            service = TemplateService(
                ServiceConfig(max_retries=0, retry_backoff_s=0.001,
                              batch_window_s=0.0),
                run_fn=malformed,
            )
            await service.start()
            tasks = [
                asyncio.create_task(service.submit("dual-queue", workload))
                for _ in range(4)
            ]
            await asyncio.sleep(0.05)
            t0 = time.perf_counter()
            await service.stop(drain=True)
            stop_s = time.perf_counter() - t0
            return await asyncio.gather(*tasks), stop_s

        responses, stop_s = asyncio.run(driver())
        assert all(r.status in ("failed", "rejected") for r in responses)
        assert stop_s < 5.0  # pre-fix this hung for drain_timeout_s (30s)

    def test_wedged_dispatch_is_bounded_by_drain_timeout(self, workload):
        """A run_fn that never returns cannot wedge stop(drain=True)."""
        def hang(spec):
            time.sleep(0.4)  # far beyond the drain bound
            return execute_batch(spec)

        async def driver():
            service = TemplateService(
                ServiceConfig(request_timeout_s=None, drain_timeout_s=0.05,
                              batch_window_s=0.0),
                run_fn=hang,
            )
            await service.start()
            task = asyncio.create_task(service.submit("dual-queue", workload))
            await asyncio.sleep(0.02)
            t0 = time.perf_counter()
            await service.stop(drain=True)
            stop_s = time.perf_counter() - t0
            return await task, stop_s

        response, stop_s = asyncio.run(driver())
        assert response.status == "failed"
        assert "cancelled" in response.reason
        assert stop_s < 0.4  # bounded by drain_timeout_s, not the hang


class TestRejectionIds:
    def test_rejections_carry_real_monotonic_ids(self, workload):
        """Structured rejections used to share the sentinel id=-1."""
        def slow(spec):
            time.sleep(0.08)
            return execute_batch(spec)

        async def scenario(service):
            first = asyncio.create_task(
                service.submit("dual-queue", workload))
            await asyncio.sleep(0.02)  # let it be admitted + dispatched
            rejected = [
                await service.submit("dual-queue", workload)
                for _ in range(3)
            ]
            return await first, rejected

        ok, rejected = run_service(
            scenario,
            ServiceConfig(max_pending=1, batch_window_s=0.0),
            run_fn=slow,
        )
        assert ok.ok and ok.id == 0
        assert [r.status for r in rejected] == ["rejected"] * 3
        ids = [r.id for r in rejected]
        assert ids == [1, 2, 3]  # real, distinct, monotonic — never -1

    def test_drain_false_rejections_echo_request_ids(self, workload):
        def slow(spec):
            time.sleep(0.1)
            return execute_batch(spec)

        async def driver():
            service = TemplateService(
                ServiceConfig(batch_window_s=0.0, max_batch=1), run_fn=slow)
            await service.start()
            tasks = [
                asyncio.create_task(service.submit("dual-queue", workload))
                for _ in range(4)
            ]
            await asyncio.sleep(0.02)
            await service.stop(drain=False)
            return await asyncio.gather(*tasks)

        responses = asyncio.run(driver())
        assert sorted(r.id for r in responses) == [0, 1, 2, 3]
        assert all(r.id >= 0 for r in responses)


class TestConfigValidation:
    """ServiceConfig gaps that used to slip through to runtime faults."""

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(workers=0), "workers must be >= 1"),
            (dict(workers=-2), "workers must be >= 1"),
            (dict(request_timeout_s=0), "request_timeout_s must be positive"),
            (dict(request_timeout_s=-1.5),
             "request_timeout_s must be positive"),
            (dict(stats_window=0), "stats_window must be >= 1"),
            # exact wording MicroBatcher itself uses
            (dict(inline_cost_threshold=-1),
             "inline_cost_threshold cannot be negative"),
            (dict(drain_timeout_s=0), "drain_timeout_s must be positive"),
            (dict(default_priority="urgent"), "unknown priority"),
            (dict(max_pending_per_class={"urgent": 4}), "unknown priority"),
            (dict(max_pending_per_class={"low": 0}), "must be >= 1"),
            (dict(tenant_quota=0), "tenant_quota must be >= 1"),
            (dict(tenant_quotas={"acme": 0}), "must be >= 1"),
            (dict(default_deadline_s=0), "default_deadline_s"),
            (dict(degrade_pending_threshold=0), "degrade_pending_threshold"),
            (dict(autoscale=True, devices=2, max_devices=1),
             "autoscale bounds"),
            (dict(autoscale=True, backend="queue"), "single-device"),
            (dict(autoscale=True, max_devices=2, scale_check_interval_s=0),
             "scale_check_interval_s"),
            (dict(autoscale=True, max_devices=2,
                  scale_up_pending_per_device=0),
             "scale_up_pending_per_device"),
            (dict(autoscale=True, max_devices=2, scale_cooldown_s=-1),
             "scale_cooldown_s"),
        ],
    )
    def test_invalid_config_fails_fast(self, kwargs, match):
        with pytest.raises(ServiceError, match=match):
            ServiceConfig(**kwargs)

    def test_valid_boundary_values_accepted(self):
        config = ServiceConfig(
            workers=1, stats_window=1, inline_cost_threshold=0,
            request_timeout_s=None, drain_timeout_s=None,
            tenant_quota=1, max_pending_per_class={"low": 1},
            degrade_pending_threshold=1,
        )
        assert config.workers == 1
        assert config.min_devices == config.max_devices == config.devices
