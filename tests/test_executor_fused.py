"""Fused batch execution: ``execute_fused`` / ``run_many`` equivalence.

The fused executor merges N heterogeneous launch graphs into one
event-loop pass and demuxes exact per-graph results.  The contract is
*bit*-identity — not tolerance-based closeness — with N sequential
:meth:`GpuExecutor.run` calls on the same engine, across every registry
template (including dynamic-parallelism graphs), batch sizes down to 1,
and both the serial and vectorized placement paths.
"""

import numpy as np
import pytest

from repro.backends import DeviceGroup, SimBackend
from repro.core import (
    AccessStream,
    NestedLoopWorkload,
    RecursiveTreeWorkload,
    TemplateParams,
)
from repro.core.base import run_many
from repro.core.registry import ALL_TEMPLATES, resolve
from repro.gpusim import KEPLER_K20, GpuExecutor, execute_fused
from repro.gpusim import executor as executor_mod
from repro.gpusim.kernels import LaunchGraph
from repro.service import ServiceConfig, TemplateService
from repro.trees.generator import generate_tree

NESTED_NAMES = sorted(n for n, (k, _) in ALL_TEMPLATES.items()
                      if k == "nested-loop")
TREE_NAMES = sorted(n for n, (k, _) in ALL_TEMPLATES.items() if k == "tree")


def _nested_workload(shape: str, n: int = 700, seed: int = 3):
    rng = np.random.default_rng(seed)
    if shape == "uniform":
        trips = np.full(n, 19, dtype=np.int64)
    elif shape == "power":
        trips = rng.zipf(1.8, size=n).clip(max=400).astype(np.int64)
    else:  # hot: one giant iteration among trivial ones
        trips = np.full(n, 2, dtype=np.int64)
        trips[n // 3] = 1800
    nnz = int(trips.sum())
    rng2 = np.random.default_rng(seed + 1)
    streams = [
        AccessStream("seq", np.arange(nnz, dtype=np.int64) * 4),
        AccessStream("gather", rng2.integers(0, nnz, size=nnz) * 4),
        AccessStream("scatter", rng2.integers(0, nnz, size=nnz) * 4,
                     "store", 4, staged_in_shared=True),
    ]
    return NestedLoopWorkload(name=f"fuse-{shape}", trip_counts=trips,
                              streams=streams)


@pytest.fixture(scope="module")
def nested_workloads():
    return {s: _nested_workload(s) for s in ("uniform", "power", "hot")}


@pytest.fixture(scope="module")
def tree_workloads():
    tree = generate_tree(depth=6, outdegree=4, sparsity=0.4, seed=5)
    return {k: RecursiveTreeWorkload(tree, k)
            for k in ("descendants", "heights")}


def _graph_of(name, workload):
    built = resolve(name).build(workload, KEPLER_K20, TemplateParams())
    return built[0] if isinstance(built, tuple) else built


@pytest.fixture(scope="module")
def all_graphs(nested_workloads, tree_workloads):
    """One graph per (template, workload-shape) — the mixed fusion batch."""
    graphs = {}
    for name in NESTED_NAMES:
        for shape, wl in nested_workloads.items():
            graphs[f"{name}/{shape}"] = _graph_of(name, wl)
    for name in TREE_NAMES:
        for kind, wl in tree_workloads.items():
            graphs[f"{name}/{kind}"] = _graph_of(name, wl)
    return graphs


def assert_result_equal(fused, sequential, label=""):
    """Field-by-field *bit* equality of two ExecutionResults."""
    assert fused.cycles == sequential.cycles, label
    assert fused.time_ms == sequential.time_ms, label
    assert fused.sm_busy_cycles == sequential.sm_busy_cycles, label
    assert fused.sm_count == sequential.sm_count, label
    assert fused.n_launches == sequential.n_launches, label
    assert fused.n_device_launches == sequential.n_device_launches, label
    assert fused.pool_overflows == sequential.pool_overflows, label
    assert fused.counters == sequential.counters, label


class TestExecuteFused:
    @pytest.mark.parametrize("engine", ["fast", "exact"])
    def test_mixed_batch_matches_sequential(self, all_graphs, engine):
        """Every template's graph fused together == run one at a time."""
        executor = GpuExecutor(KEPLER_K20, engine=engine)
        keys = sorted(all_graphs)
        if engine == "exact":  # exact engine is slow; a cross-section is enough
            keys = keys[::4]
        graphs = [all_graphs[k] for k in keys]
        fused = execute_fused(graphs, KEPLER_K20, engine=engine)
        for key, graph, got in zip(keys, graphs, fused):
            assert_result_equal(got, executor.run(graph), key)

    @pytest.mark.parametrize("name", NESTED_NAMES + TREE_NAMES)
    def test_singleton_batch_matches_run(self, all_graphs, name):
        """N=1 fusion is exactly a plain run, per template."""
        key = next(k for k in sorted(all_graphs) if k.startswith(f"{name}/"))
        graph = all_graphs[key]
        (fused,) = execute_fused([graph], KEPLER_K20, engine="fast")
        assert_result_equal(
            fused, GpuExecutor(KEPLER_K20, engine="fast").run(graph), key)

    def test_dynamic_parallelism_graphs_fuse(self, all_graphs):
        """Device-side launches keep exact parent/child demux when fused."""
        keys = [k for k in sorted(all_graphs)
                if k.startswith(("dpar-", "rec-"))]
        graphs = [all_graphs[k] for k in keys]
        fused = execute_fused(graphs, KEPLER_K20, engine="fast")
        executor = GpuExecutor(KEPLER_K20, engine="fast")
        for key, graph, got in zip(keys, graphs, fused):
            assert_result_equal(got, executor.run(graph), key)
        # the batch genuinely exercises device-side launches
        assert any(r.n_device_launches > 0 for r in fused)

    def test_empty_batch_and_empty_graphs(self, all_graphs):
        assert execute_fused([], KEPLER_K20) == []
        graph = all_graphs[f"{NESTED_NAMES[0]}/uniform"]
        results = execute_fused([LaunchGraph(), graph, LaunchGraph()],
                                KEPLER_K20, engine="fast")
        assert results[0].n_launches == 0 and results[0].cycles == 0.0
        assert results[2].n_launches == 0 and results[2].cycles == 0.0
        assert_result_equal(
            results[1], GpuExecutor(KEPLER_K20, engine="fast").run(graph))

    def test_duplicate_graphs_demux_independently(self, all_graphs):
        graph = all_graphs[f"{NESTED_NAMES[0]}/power"]
        results = execute_fused([graph, graph, graph], KEPLER_K20,
                                engine="fast")
        ref = GpuExecutor(KEPLER_K20, engine="fast").run(graph)
        for got in results:
            assert_result_equal(got, ref)

    def test_vectorized_and_serial_placement_agree(self, all_graphs,
                                                   monkeypatch):
        """Merge-path vectorized placement == per-scan serial placement.

        Forcing the vectorized thresholds to extremes steers every
        placement through one code path; both must reproduce the exact
        engine bit-for-bit.
        """
        keys = sorted(all_graphs)[::5]
        graphs = [all_graphs[k] for k in keys]
        exact = execute_fused(graphs, KEPLER_K20, engine="exact")

        monkeypatch.setattr(executor_mod, "_VECTOR_MIN_BLOCKS", 1)
        monkeypatch.setattr(executor_mod, "_VECTOR_MIN_SLOTS", 1)
        forced_vector = execute_fused(graphs, KEPLER_K20, engine="fast")
        monkeypatch.setattr(executor_mod, "_VECTOR_MIN_BLOCKS", 10**9)
        monkeypatch.setattr(executor_mod, "_VECTOR_MIN_SLOTS", 10**9)
        forced_serial = execute_fused(graphs, KEPLER_K20, engine="fast")

        for key, ex, fv, fs in zip(keys, exact, forced_vector, forced_serial):
            assert_result_equal(fv, fs, key)
            assert fv.cycles == pytest.approx(ex.cycles, rel=1e-6), key


class TestBackendSubmitMany:
    def test_sim_backend_matches_sequential(self, all_graphs):
        keys = sorted(all_graphs)[:8]
        graphs = [all_graphs[k] for k in keys]
        fused_backend = SimBackend(KEPLER_K20, engine="fast")
        seq_backend = SimBackend(KEPLER_K20, engine="fast")
        results = fused_backend.submit_many(graphs)
        for key, graph, got in zip(keys, graphs, results):
            assert_result_equal(got, seq_backend.submit(graph), key)
        # accounting covers every graph in the batch
        assert fused_backend.submissions == len(graphs)
        assert fused_backend.busy_ms == pytest.approx(seq_backend.busy_ms)

    def test_device_group_matches_per_graph_results(self, all_graphs):
        keys = sorted(all_graphs)[:6]
        graphs = [all_graphs[k] for k in keys]
        group = DeviceGroup(KEPLER_K20, 2, engine="fast")
        results = group.submit_many(graphs)
        ref = GpuExecutor(KEPLER_K20, engine="fast")
        for key, graph, got in zip(keys, graphs, results):
            assert_result_equal(got, ref.run(graph), key)

    def test_submit_many_empty(self):
        assert SimBackend(KEPLER_K20).submit_many([]) == []
        assert DeviceGroup(KEPLER_K20, 2).submit_many([]) == []


class TestRunMany:
    def test_run_many_matches_individual_runs(self, nested_workloads,
                                              tree_workloads):
        items = []
        for name in NESTED_NAMES:
            items.append((resolve(name), nested_workloads["power"],
                          TemplateParams()))
        for name in TREE_NAMES:
            items.append((resolve(name), tree_workloads["descendants"],
                          TemplateParams()))
        runs = run_many(items, KEPLER_K20)
        assert len(runs) == len(items)
        for (template, workload, params), run in zip(items, runs):
            ref = template.run(workload, KEPLER_K20, params)
            assert run.result.cycles == ref.result.cycles, template.name
            assert run.result.counters == ref.result.counters, template.name

    def test_run_many_empty(self):
        assert run_many([], KEPLER_K20) == []


class TestServiceFusion:
    def _responses(self, fuse: bool, workloads):
        import asyncio

        async def driver():
            config = ServiceConfig(batch_window_s=0.05, max_batch=16,
                                   fuse_batches=fuse, workers=1,
                                   inline_cost_threshold=10**9)
            service = TemplateService(config)
            await service.start()
            try:
                tasks = [
                    asyncio.create_task(service.submit(name, wl))
                    for name in ("dbuf-global", "dual-queue", "thread-mapped")
                    for wl in workloads
                ]
                responses = await asyncio.gather(*tasks)
            finally:
                await service.stop()
            return responses, service.stats.snapshot()

        return asyncio.run(driver())

    def test_fused_service_equals_unfused(self):
        """Mixed-fingerprint windows answer identically with fusion on."""
        workloads = [_nested_workload("power", n=400, seed=s)
                     for s in (1, 2)]
        fused_resp, fused_stats = self._responses(True, workloads)
        plain_resp, _ = self._responses(False, workloads)
        assert len(fused_resp) == len(plain_resp) == 6
        for a, b in zip(fused_resp, plain_resp):
            assert a.ok and b.ok
            assert a.time_ms == b.time_ms
            assert a.metrics == b.metrics
        batching = fused_stats["batching"]
        assert batching["fused_passes"] >= 1
        assert batching["fused_batches"] >= 2
