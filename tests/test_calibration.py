"""Calibration tests: the paper's headline results as *bands*.

These tests pin the reproduction to the paper's qualitative claims, not
its absolute numbers (DESIGN.md §5).  If a cost-model constant drifts so
far that a headline inverts — load balancing stops helping, dpar-naive
starts winning, recursive BFS stops being catastrophic — these fail.

They run on small datasets so the whole file stays under ~2 minutes.
"""

import numpy as np
import pytest

from repro.apps import (
    BFSApp,
    PageRankApp,
    RecursiveBFSApp,
    SpMVApp,
    SSSPApp,
    SortApp,
    TreeDescendantsApp,
)
from repro.core import TemplateParams
from repro.cpu.costmodel import XEON_E5_2620
from repro.cpu.reference import bfs_recursive_serial
from repro.gpusim import KEPLER_K20
from repro.graphs import citeseer_like, uniform_random_graph
from repro.trees import generate_tree


@pytest.fixture(scope="module")
def citeseer():
    return citeseer_like(scale=0.02, seed=0)


class TestNestedLoopHeadlines:
    """§III.B / Fig. 5: '2-6x over baseline GPU codes'."""

    @pytest.fixture(scope="class")
    def sssp_runs(self, citeseer):
        app = SSSPApp(citeseer)
        params = TemplateParams(lb_threshold=32)
        return {
            name: app.run(name, KEPLER_K20, params if name != "baseline" else None)
            for name in ("baseline", "dbuf-shared", "dbuf-global",
                         "dual-queue", "dpar-naive", "dpar-opt")
        }

    def test_load_balancing_speedup_band(self, sssp_runs):
        base = sssp_runs["baseline"].gpu_time_ms
        for name in ("dbuf-shared", "dbuf-global", "dpar-opt"):
            speedup = base / sssp_runs[name].gpu_time_ms
            assert 2.0 <= speedup <= 6.0, (name, speedup)

    def test_dpar_naive_below_one(self, sssp_runs):
        base = sssp_runs["baseline"].gpu_time_ms
        assert base / sssp_runs["dpar-naive"].gpu_time_ms < 1.0

    def test_dbuf_shared_among_best(self, sssp_runs):
        times = {n: r.gpu_time_ms for n, r in sssp_runs.items()
                 if n not in ("baseline", "dpar-naive")}
        best = min(times.values())
        assert times["dbuf-shared"] <= best * 1.2

    def test_warp_efficiency_ordering(self, sssp_runs):
        base = sssp_runs["baseline"].metrics.warp_execution_efficiency
        for name in ("dbuf-shared", "dbuf-global", "dual-queue"):
            assert sssp_runs[name].metrics.warp_execution_efficiency > 2 * base

    def test_dbuf_shared_best_store_efficiency(self, sssp_runs):
        gst = {n: r.metrics.gst_efficiency for n, r in sssp_runs.items()}
        assert gst["dbuf-shared"] == max(gst.values())

    def test_dbuf_global_higher_occupancy_than_shared(self, citeseer):
        # paper §III.B: at lbTHRES=32 dbuf-global's warp occupancy (26.9%)
        # exceeds dbuf-shared's (18.3%) because the second kernel
        # redistributes the buffered work across blocks
        app = SpMVApp(citeseer)
        params = TemplateParams(lb_threshold=32)
        shared = app.run("dbuf-shared", KEPLER_K20, params)
        global_ = app.run("dbuf-global", KEPLER_K20, params)
        assert global_.metrics.warp_occupancy > shared.metrics.warp_occupancy


class TestBaselineSpeedups:
    """§III.B text: baseline GPU beats serial CPU on every app."""

    def test_sssp_baseline_band(self, citeseer):
        run = SSSPApp(citeseer).run("baseline", KEPLER_K20)
        assert 2.0 <= run.speedup <= 20.0  # paper: 8.2x

    def test_pagerank_baseline_band(self, citeseer):
        run = PageRankApp(citeseer, n_iters=5).run("baseline", KEPLER_K20)
        assert 3.0 <= run.speedup <= 40.0  # paper: 15.8x

    def test_spmv_baseline_band(self, citeseer):
        run = SpMVApp(citeseer).run("baseline", KEPLER_K20)
        assert 1.0 <= run.speedup <= 10.0  # paper: 2.4x


class TestTreeHeadlines:
    """Fig. 7/8: 'substantial speedups (up to 15-24x)' for rec-hier, and
    rec-naive far below serial CPU."""

    def test_rec_hier_beats_cpu_at_large_outdegree(self):
        # the paper's headline: "substantial speedups (up to 15-24x)";
        # at outdegree 64 (266k nodes) the curve is already inside the band
        tree = generate_tree(4, 64, sparsity=0.0)
        run = TreeDescendantsApp(tree).run("rec-hier", KEPLER_K20)
        assert run.speedup > 10.0

    def test_rec_hier_scales_with_outdegree(self):
        speedups = []
        for d in (16, 64):
            tree = generate_tree(4, d, sparsity=0.0)
            speedups.append(
                TreeDescendantsApp(tree).run("rec-hier", KEPLER_K20).speedup
            )
        assert speedups[1] > speedups[0]

    def test_rec_naive_far_below_cpu(self):
        tree = generate_tree(4, 32, sparsity=0.0)
        run = TreeDescendantsApp(tree).run("rec-naive", KEPLER_K20)
        assert run.speedup < 0.5

    def test_hier_outgrows_flat_with_outdegree(self):
        # Fig. 7(a)'s crossover mechanism: flat is pinned by the hot-root
        # atomic tail while rec-hier keeps scaling, so rec-hier's speedup
        # grows much faster across an outdegree quadrupling.
        flat, hier = {}, {}
        for d in (16, 64):
            tree = generate_tree(4, d, sparsity=0.0)
            app = TreeDescendantsApp(tree)
            flat[d] = app.run("flat", KEPLER_K20).speedup
            hier[d] = app.run("rec-hier", KEPLER_K20).speedup
        assert hier[64] / hier[16] > 1.5 * (flat[64] / flat[16])


class TestRecursiveBFSHeadlines:
    """Fig. 9: flat wins big; recursive variants are catastrophic."""

    @pytest.fixture(scope="class")
    def setup(self):
        graph = uniform_random_graph(8000, (16, 48), seed=0)
        cpu_rec_ms = XEON_E5_2620.time_ms(bfs_recursive_serial(graph).ops)
        return graph, cpu_rec_ms

    def test_flat_beats_recursive_cpu(self, setup):
        graph, cpu_rec_ms = setup
        flat = BFSApp(graph).run("baseline", KEPLER_K20)
        assert cpu_rec_ms / flat.gpu_time_ms > 1.5

    def test_recursive_slowdown_band(self, setup):
        graph, cpu_rec_ms = setup
        rec = RecursiveBFSApp(graph)
        naive = rec.run("rec-naive", KEPLER_K20)
        hier = rec.run("rec-hier", KEPLER_K20)
        # the paper's full-scale band is 700-14,000x; at this reduced
        # scale we require "catastrophic", i.e. >= 50x
        assert naive.gpu_time_ms / cpu_rec_ms > 50
        assert hier.gpu_time_ms / cpu_rec_ms > 50

    def test_streams_help_naive_only(self, setup):
        graph, _ = setup
        rec = RecursiveBFSApp(graph)
        one = TemplateParams(streams_per_block=1)
        two = TemplateParams(streams_per_block=2)
        assert (rec.run("rec-naive", KEPLER_K20, two).gpu_time_ms
                < rec.run("rec-naive", KEPLER_K20, one).gpu_time_ms)
        # extra streams change nothing for hier (already per-block streams)
        hier_one = rec.run("rec-hier", KEPLER_K20, one).gpu_time_ms
        hier_two = rec.run("rec-hier", KEPLER_K20, two).gpu_time_ms
        assert hier_two == pytest.approx(hier_one, rel=0.05)


class TestSortHeadlines:
    """Fig. 2: the flat MergeSort wins at every size."""

    def test_mergesort_beats_quicksorts(self):
        rng = np.random.default_rng(1)
        app = SortApp(rng.integers(0, 1 << 31, size=100_000))
        merge = app.run("mergesort", KEPLER_K20).time_ms
        simple = app.run("quicksort-simple", KEPLER_K20).time_ms
        advanced = app.run("quicksort-advanced", KEPLER_K20).time_ms
        assert merge < advanced < simple
