"""Versioned workload streams in the serving layer: snapshot pinning,
the MVCC version window, and the zero-torn-reads acceptance guarantee."""

import os
import threading

import numpy as np
import pytest

import repro
from repro.core import artifactcache
from repro.core.analysis import clear_analysis_cache
from repro.core.mutation import MutationBatch, PairInserts
from repro.core.plancache import default_cache
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.errors import ServiceError
from repro.service.streams import WorkloadStream


@pytest.fixture(autouse=True)
def isolated_caches():
    saved = artifactcache._cache
    saved_env = os.environ.get(artifactcache.ENV_VAR)
    artifactcache._cache = None
    os.environ.pop(artifactcache.ENV_VAR, None)
    default_cache().clear()
    clear_analysis_cache(reset_stats=True)
    yield
    artifactcache._cache = saved
    if saved_env is None:
        os.environ.pop(artifactcache.ENV_VAR, None)
    else:
        os.environ[artifactcache.ENV_VAR] = saved_env
    default_cache().clear()
    clear_analysis_cache(reset_stats=True)


def make_workload(seed=0, outer=200):
    rng = np.random.default_rng(seed)
    trips = rng.integers(0, 8, size=outer).astype(np.int64)
    nnz = int(trips.sum())
    return NestedLoopWorkload(
        name=f"svc-stream-{seed}",
        trip_counts=trips,
        streams=[
            AccessStream("x", rng.integers(0, 4096, nnz) * 4, "load", 4),
            AccessStream("y", rng.integers(0, 4096, nnz) * 8, "store", 8),
        ],
        atomic_targets=rng.integers(-1, outer, nnz),
    )


def insert_batch(rng, wl, k=4):
    rows = rng.integers(0, wl.outer_size, k)
    return MutationBatch(inserts=PairInserts(
        outer_ids=rows,
        stream_addresses=[rng.integers(0, 4096, k) * 4,
                          rng.integers(0, 4096, k) * 8],
        atomic_targets=rng.integers(-1, wl.outer_size, k),
    ))


class TestWorkloadStream:
    def test_registration_validation(self):
        wl = make_workload()
        with pytest.raises(ServiceError):
            WorkloadStream("", wl)
        with pytest.raises(ServiceError):
            WorkloadStream("s", "not a workload")
        with pytest.raises(ServiceError):
            WorkloadStream("s", wl, keep_versions=0)

    def test_mutate_advances_and_parent_survives(self):
        wl = make_workload(seed=1)
        stream = WorkloadStream("s", wl, keep_versions=4)
        rng = np.random.default_rng(0)
        fp0 = wl.fingerprint()
        trips0 = wl.trip_counts.copy()
        delta = stream.mutate(insert_batch(rng, stream.head))
        assert stream.version == 1
        assert delta.version_to == 1
        assert stream.head is not wl
        # the pinned version-0 snapshot is byte-for-byte the original
        v0 = stream.get(0)
        assert v0 is wl
        assert v0.fingerprint() == fp0
        assert np.array_equal(v0.trip_counts, trips0)
        assert stream.get() is stream.head
        assert stream.get(None) is stream.head

    def test_version_window_eviction(self):
        stream = WorkloadStream("s", make_workload(seed=2), keep_versions=3)
        rng = np.random.default_rng(1)
        for _ in range(5):
            stream.mutate(insert_batch(rng, stream.head))
        assert stream.versions() == [3, 4, 5]
        assert stream.mutations == 5
        with pytest.raises(ServiceError) as err:
            stream.get(0)
        assert "not retained" in str(err.value)
        assert "[3, 4, 5]" in str(err.value)
        snap = stream.snapshot()
        assert snap["version"] == 5
        assert snap["mutations"] == 5
        assert snap["retained"] == 3


class TestServiceStreams:
    def test_register_mutate_and_pinned_submit(self):
        wl = make_workload(seed=3)
        ref = repro.run(wl, "dbuf-global")
        rng = np.random.default_rng(2)
        with repro.serve(max_batch=4, workers=1, fuse_batches=False) as svc:
            svc.register_workload("g", wl, keep_versions=8)
            with pytest.raises(ServiceError):
                svc.register_workload("g", make_workload(seed=4))
            for _ in range(3):
                svc.mutate_workload("g", insert_batch(rng, wl))
            head = svc.request("dbuf-global", "g")
            pinned = svc.request("dbuf-global", "g", version=0)
            assert head.status == "ok" and pinned.status == "ok"
            # version 0 is the pre-mutation trace: identical to repro.run
            # on the original workload, and different from the head
            assert pinned.time_ms == ref.time_ms
            assert head.time_ms != ref.time_ms
            stats = svc.stats()
            assert stats["mutations"] == 3
            assert stats["streams"]["g"]["version"] == 3
            assert stats["streams"]["g"]["mutations"] == 3

    def test_structured_errors(self):
        with repro.serve(max_batch=4, workers=1, fuse_batches=False) as svc:
            svc.register_workload("g", make_workload(seed=5), keep_versions=2)
            with pytest.raises(ServiceError):
                svc.mutate_workload("nope", MutationBatch(append_outer=1))
            with pytest.raises(ServiceError):
                svc.request("baseline", "nope")
            with pytest.raises(ServiceError):  # evicted version
                rng = np.random.default_rng(3)
                for _ in range(4):
                    svc.mutate_workload(
                        "g", insert_batch(rng, svc.service._streams["g"].head))
                svc.request("baseline", "g", version=0)
            with pytest.raises(ServiceError):  # version= needs a stream name
                svc.request("baseline", make_workload(seed=6), version=0)

    def test_zero_torn_reads_under_concurrent_mutations(self):
        """Acceptance: requests pinned to a snapshot reproduce that
        snapshot's result exactly, no matter how many mutations land
        while they are in flight."""
        wl = make_workload(seed=7)
        ref = repro.run(wl, "thread-mapped")
        stop = threading.Event()
        torn = []

        with repro.serve(max_batch=8, workers=1, fuse_batches=False) as svc:
            svc.register_workload("g", wl, keep_versions=10_000)

            def mutator():
                rng = np.random.default_rng(4)
                while not stop.is_set():
                    svc.mutate_workload("g", insert_batch(rng, wl),
                                        warm_analysis=False)

            thread = threading.Thread(target=mutator)
            thread.start()
            try:
                futures = [svc.submit("thread-mapped", "g", version=0)
                           for _ in range(24)]
                for future in futures:
                    response = future.result(timeout=30)
                    if (response.status != "ok"
                            or response.time_ms != ref.time_ms):
                        torn.append(response)
            finally:
                stop.set()
                thread.join()
            mutations = svc.stats()["mutations"]

        assert torn == []
        assert mutations > 0  # the stream really advanced mid-flight
