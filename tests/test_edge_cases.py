"""Edge cases and failure injection across module boundaries.

Degenerate-but-legal inputs (single node, zero trips everywhere, star
hubs, one-element sorts) plus corrupted-input handling: the library must
either compute the right trivial answer or raise its own exception type,
never crash with a bare numpy error.
"""

import numpy as np
import pytest

from repro.apps import BFSApp, SpMVApp, SSSPApp, TreeDescendantsApp
from repro.core import (
    AccessStream,
    NestedLoopWorkload,
    TemplateParams,
    resolve,
)
from repro.errors import ReproError
from repro.gpusim import KEPLER_K20
from repro.graphs import CSRGraph
from repro.trees import Tree, generate_tree


class TestDegenerateWorkloads:
    def test_all_zero_trips(self):
        wl = NestedLoopWorkload("z", np.zeros(100, dtype=np.int64))
        for name in ("baseline", "dbuf-shared", "dual-queue"):
            run = resolve(name, kind="nested-loop").run(wl, KEPLER_K20)
            assert run.time_ms > 0  # launch overheads still exist

    def test_single_outer_iteration(self):
        wl = NestedLoopWorkload(
            "one", np.array([1000]),
            streams=[AccessStream("s", np.arange(1000) * 4)],
        )
        base = resolve("baseline", kind="nested-loop").run(wl, KEPLER_K20)
        blk = resolve("block-mapped", kind="nested-loop").run(wl, KEPLER_K20)
        # one giant row: block mapping must crush thread mapping
        assert blk.time_ms < base.time_ms

    def test_everything_above_threshold(self):
        wl = NestedLoopWorkload("big", np.full(64, 500),
                                streams=[AccessStream(
                                    "s", np.arange(64 * 500) * 4)])
        run = resolve("dbuf-shared", kind="nested-loop").run(
            wl, KEPLER_K20, TemplateParams(lb_threshold=32))
        assert run.schedule["inline"].size == 0
        assert run.schedule["buffered"].size == 64

    def test_everything_below_threshold(self):
        wl = NestedLoopWorkload("small", np.full(64, 4),
                                streams=[AccessStream(
                                    "s", np.arange(64 * 4) * 4)])
        run = resolve("dpar-opt", kind="nested-loop").run(
            wl, KEPLER_K20, TemplateParams(lb_threshold=32))
        assert run.schedule["nested"].size == 0
        assert run.metrics.device_kernel_calls == 0


class TestDegenerateGraphs:
    def test_single_node_no_edges(self):
        g = CSRGraph(np.array([0, 0]), np.array([], dtype=np.int64))
        assert SSSPApp(g).compute().tolist() == [0.0]
        assert BFSApp(g).compute().tolist() == [0]
        run = SpMVApp(g, x=np.array([2.0])).run("baseline", KEPLER_K20)
        assert run.result.tolist() == [0.0]

    def test_star_hub_graph(self):
        # one node with every edge: the extreme load-balancing case
        n = 2000
        src = np.zeros(n - 1, dtype=np.int64)
        dst = np.arange(1, n, dtype=np.int64)
        g = CSRGraph.from_edges(n, src, dst)
        app = SpMVApp(g, seed=3)
        base = app.run("baseline", KEPLER_K20)
        dbuf = app.run("dbuf-global", KEPLER_K20, TemplateParams(lb_threshold=32))
        assert dbuf.gpu_time_ms < base.gpu_time_ms / 2

    def test_self_contained_components(self):
        g = CSRGraph(np.array([0, 0, 0, 0]), np.array([], dtype=np.int64))
        levels = BFSApp(g, source=1).compute()
        assert levels.tolist() == [-1, 0, -1]


class TestDegenerateTrees:
    def test_single_node_tree_under_all_templates(self):
        t = generate_tree(1, 1)
        for name in ("flat", "rec-naive", "rec-hier"):
            run = TreeDescendantsApp(t).run(name, KEPLER_K20)
            assert run.result.tolist() == [1]

    def test_path_tree(self):
        # outdegree 1: a linked list — worst case for everything
        t = generate_tree(depth=6, outdegree=1, sparsity=0.0)
        assert t.n_nodes == 6
        run = TreeDescendantsApp(t).run("flat", KEPLER_K20)
        assert run.result.tolist() == [6, 5, 4, 3, 2, 1]


class TestFailureInjection:
    def test_corrupted_tree_rejected(self):
        with pytest.raises(ReproError):
            Tree(
                parents=np.array([-1, 5]),  # parent out of range
                level_offsets=np.array([0, 1, 2]),
                child_offsets=np.array([0, 1, 1]),
                children=np.array([1]),
            )

    def test_workload_stream_type_confusion(self):
        with pytest.raises(ReproError):
            AccessStream("s", np.zeros(4), kind="prefetch")

    def test_template_on_garbage_threshold(self):
        with pytest.raises(ReproError):
            TemplateParams(lb_threshold=-5)

    def test_library_errors_share_a_base_class(self):
        # callers can catch ReproError for anything the library raises
        from repro.errors import (
            ConfigError, DatasetError, ExperimentError, GraphError,
            LaunchError, PlanError, WorkloadError,
        )
        for exc in (ConfigError, DatasetError, ExperimentError, GraphError,
                    LaunchError, PlanError, WorkloadError):
            assert issubclass(exc, ReproError)
