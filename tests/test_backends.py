"""Backend seam + multi-device sharding invariants.

The contracts the tentpole refactor rests on:

* ``SimBackend`` is a transparent wrapper — a single-device run through
  the backend seam is bit-for-bit identical to the pre-refactor inline
  ``GpuExecutor`` path, and its fingerprint equals the bare device
  fingerprint (so plan/run cache keys are unchanged at ``devices=1``).
* ``DeviceGroup`` sharding preserves the work: merged schedules cover
  every outer iteration exactly once, per-device work counters sum to
  the single-device totals, and merged timing is the max (concurrent
  devices), not the sum.
* Shard fingerprints are disjoint from whole-workload fingerprints so
  multi-device cache entries never collide with single-device ones.
"""

import numpy as np
import pytest

import repro
from repro import obs
from repro.backends import (
    DeviceGroup,
    SimBackend,
    backend_for,
    coerce_backend,
    set_default_devices,
)
from repro.backends.base import BackendCapabilities, capabilities_of
from repro.backends.group import run_sharded
from repro.core.base import plan_key
from repro.core.params import TemplateParams
from repro.core.recursive import RecursiveTreeWorkload
from repro.core.registry import resolve
from repro.core.sharding import clear_shard_cache, shard_workload
from repro.core.workload import NestedLoopWorkload
from repro.errors import ConfigError
from repro.gpusim.config import KEPLER_K20
from repro.gpusim.executor import GpuExecutor
from repro.ir.select import Selection, auto_select
from repro.trees.generator import generate_tree


@pytest.fixture()
def loop_wl():
    rng = np.random.default_rng(42)
    trips = rng.zipf(1.6, size=400).clip(max=300)
    return NestedLoopWorkload("backend-loop", trips.astype(np.int64))


@pytest.fixture()
def tree_wl():
    return RecursiveTreeWorkload(generate_tree(depth=7, outdegree=3,
                                               sparsity=0.2, seed=9))


@pytest.fixture(autouse=True)
def _reset_devices():
    yield
    set_default_devices(1)
    clear_shard_cache()


class TestSimBackend:
    def test_single_device_is_bit_for_bit(self, loop_wl):
        tmpl = resolve("dbuf-global")
        via_backend = tmpl.run(loop_wl, KEPLER_K20,
                               backend=SimBackend(KEPLER_K20))
        via_executor = tmpl.run(loop_wl, KEPLER_K20,
                                executor=GpuExecutor(KEPLER_K20))
        assert via_backend.result.cycles == via_executor.result.cycles
        assert via_backend.result.counters == via_executor.result.counters
        assert via_backend.metrics.as_dict() == via_executor.metrics.as_dict()

    def test_fingerprint_matches_bare_device(self):
        assert SimBackend(KEPLER_K20).fingerprint() == KEPLER_K20.fingerprint()

    def test_capabilities_reflect_device(self):
        caps = SimBackend(KEPLER_K20).capabilities
        assert caps.devices == 1
        assert caps.shared_mem_per_block == KEPLER_K20.shared_mem_per_block
        assert caps.supports(resolve("dpar-opt")) == caps.dynamic_parallelism

    def test_from_executor_preserves_instance(self):
        ex = GpuExecutor(KEPLER_K20, engine="exact")
        backend = SimBackend.from_executor(ex)
        assert backend.executor is ex
        assert backend.engine == "exact"

    def test_coerce_accepts_legacy_executor(self):
        ex = GpuExecutor(KEPLER_K20)
        backend = coerce_backend(None, ex, KEPLER_K20)
        assert isinstance(backend, SimBackend)
        assert backend.executor is ex


class TestSharding:
    def test_loop_shards_partition_outer(self, loop_wl):
        shards = shard_workload(loop_wl, 4)
        members = np.concatenate([s.members for s in shards])
        assert np.array_equal(np.sort(members),
                              np.arange(loop_wl.outer_size))
        assert sum(s.workload.n_pairs for s in shards) == loop_wl.n_pairs

    def test_loop_shards_are_balanced(self, loop_wl):
        shards = shard_workload(loop_wl, 4)
        pair_counts = [s.workload.n_pairs for s in shards]
        # heaviest-first round-robin: no shard dominates
        assert max(pair_counts) <= 2 * min(pair_counts) + max(loop_wl.trip_counts)

    def test_tree_shards_partition_non_root_nodes(self, tree_wl):
        shards = shard_workload(tree_wl, 4)
        # each shard re-roots a subset under a synthetic root
        total = sum(s.workload.tree.n_nodes - 1 for s in shards)
        assert total == tree_wl.tree.n_nodes - 1

    def test_shard_fingerprints_disjoint(self, loop_wl):
        shards = shard_workload(loop_wl, 3)
        fps = {s.workload.fingerprint() for s in shards}
        assert len(fps) == 3
        assert loop_wl.fingerprint() not in fps

    def test_shard_plans_memoized(self, loop_wl):
        a = shard_workload(loop_wl, 3)
        b = shard_workload(loop_wl, 3)
        assert a is b

    def test_unshardable_returns_none(self):
        tiny = NestedLoopWorkload("tiny", np.array([5], dtype=np.int64))
        assert shard_workload(tiny, 4) is None


class TestDeviceGroup:
    def test_merged_schedule_covers_workload(self, loop_wl):
        group = DeviceGroup(KEPLER_K20, 4)
        run = resolve("dual-queue").run(loop_wl, KEPLER_K20, backend=group)
        covered = np.concatenate(list(run.schedule.values()))
        assert np.array_equal(np.sort(covered), np.arange(loop_wl.outer_size))

    def test_merged_time_is_max_not_sum(self, loop_wl):
        group = DeviceGroup(KEPLER_K20, 4)
        run = resolve("dbuf-global").run(loop_wl, KEPLER_K20, backend=group)
        per_dev = [r.result.time_ms for r in run.device_runs]
        assert run.result.time_ms == pytest.approx(max(per_dev))
        assert run.result.time_ms < sum(per_dev)

    def test_busy_cycles_and_launches_sum(self, loop_wl):
        group = DeviceGroup(KEPLER_K20, 4)
        run = resolve("dbuf-global").run(loop_wl, KEPLER_K20, backend=group)
        assert run.result.sm_busy_cycles == sum(
            r.result.sm_busy_cycles for r in run.device_runs)
        assert run.result.n_launches == sum(
            r.result.n_launches for r in run.device_runs)

    def test_device_counters_sum_to_single_device_totals(self, loop_wl):
        group = DeviceGroup(KEPLER_K20, 4)
        obs.reset()
        obs.set_enabled(True)
        try:
            resolve("dbuf-global").run(loop_wl, KEPLER_K20, backend=group)
            counters = obs.summary()["counters"]
        finally:
            obs.set_enabled(False)
            obs.reset()
        outer = sum(v for k, v in counters.items() if k.endswith(".outer"))
        pairs = sum(v for k, v in counters.items() if k.endswith(".pairs"))
        assert outer == loop_wl.outer_size
        assert pairs == loop_wl.n_pairs

    def test_tree_multi_device_runs(self, tree_wl):
        group = DeviceGroup(KEPLER_K20, 4)
        run = resolve("rec-naive").run(tree_wl, KEPLER_K20, backend=group)
        assert run.device_runs is not None
        assert len(run.device_runs) >= 2
        assert run.result.cycles > 0

    def test_unshardable_falls_back_to_one_device(self):
        tiny = NestedLoopWorkload("tiny", np.array([5], dtype=np.int64))
        group = DeviceGroup(KEPLER_K20, 4)
        run = resolve("thread-mapped").run(tiny, KEPLER_K20, backend=group)
        assert run.device_runs is None
        assert run.result.cycles > 0

    def test_run_sharded_none_when_unshardable(self):
        tiny = NestedLoopWorkload("tiny", np.array([5], dtype=np.int64))
        group = DeviceGroup(KEPLER_K20, 2)
        assert run_sharded(resolve("thread-mapped"), tiny, group,
                           KEPLER_K20, TemplateParams()) is None

    def test_least_loaded_routing(self):
        group = DeviceGroup(KEPLER_K20, 3)
        idx = group.acquire()
        assert group.least_loaded() != idx
        group.complete(idx, busy_ms=100.0)
        assert group.least_loaded() != idx

    def test_group_fingerprint_distinct_from_single(self):
        group = DeviceGroup(KEPLER_K20, 2)
        assert group.fingerprint() != KEPLER_K20.fingerprint()
        assert group.fingerprint().endswith("x2")


class TestCapabilitiesBackCompat:
    """Adding ``persistent_queue`` must not disturb PR-5-era identities.

    Code written against the original three-field ``BackendCapabilities``
    (positional construction, ``capabilities_of``, fingerprints, plan and
    selection cache keys) has to behave byte-identically now that the
    queue capability flag exists.
    """

    def test_positional_construction_still_works(self):
        caps = BackendCapabilities(True, 49152, 2)
        assert caps.dynamic_parallelism is True
        assert caps.shared_mem_per_block == 49152
        assert caps.devices == 2
        assert caps.persistent_queue is False

    def test_capabilities_of_defaults_queue_off(self):
        assert capabilities_of(KEPLER_K20).persistent_queue is False
        assert capabilities_of(KEPLER_K20, devices=4).persistent_queue is False

    def test_supports_unchanged_for_bsp_backends(self):
        """Without the queue flag, ``supports()`` is the PR-5 predicate:
        only dynamic parallelism can disqualify a template."""
        caps = capabilities_of(KEPLER_K20)
        assert caps.supports(resolve("dbuf-shared"))  # queue-incompatible
        assert (caps.supports(resolve("dpar-opt"))
                == caps.dynamic_parallelism)

    def test_bsp_run_cache_tags_are_none(self):
        assert SimBackend(KEPLER_K20).run_cache_tag is None
        assert DeviceGroup(KEPLER_K20, 2).run_cache_tag is None

    def test_bsp_fingerprints_unchanged(self):
        assert SimBackend(KEPLER_K20).fingerprint() == KEPLER_K20.fingerprint()
        group_fp = DeviceGroup(KEPLER_K20, 2).fingerprint()
        assert group_fp == f"{KEPLER_K20.fingerprint()}x2"

    def test_plan_key_has_no_backend_component(self, loop_wl):
        tmpl = resolve("dbuf-global")
        key = plan_key(tmpl, loop_wl.fingerprint(), KEPLER_K20,
                       TemplateParams())
        assert len(key) == 4  # (workload, template, device, params)
        assert "queue" not in repr(key)

    def test_selection_identical_for_default_backend(self, loop_wl):
        """backend="sim" must hit the exact cache entry the PR-6 call
        signature produced (the key gains no backend component)."""
        implicit = auto_select(loop_wl, KEPLER_K20)
        explicit = auto_select(loop_wl, KEPLER_K20, backend="sim")
        assert explicit is implicit  # same memory-cache entry

    def test_selection_to_dict_tolerates_old_pickles(self, loop_wl):
        sel = auto_select(loop_wl, KEPLER_K20)
        assert sel.to_dict()["backend"] == "sim"
        # a Selection unpickled from before the field existed has no
        # instance attribute; to_dict must still report the default
        legacy = Selection.__new__(Selection)
        legacy.__dict__.update(sel.__dict__)
        legacy.__dict__.pop("backend", None)
        assert legacy.to_dict()["backend"] == "sim"


class TestFacade:
    def test_run_devices_kwarg(self, loop_wl):
        single = repro.run(loop_wl, "dbuf-global")
        multi = repro.run(loop_wl, "dbuf-global", devices=4)
        assert multi.device_runs is not None
        assert len(multi.device_runs) == 4
        # same total work, executed concurrently
        assert multi.result.time_ms < single.result.time_ms

    def test_run_devices_one_is_default_path(self, loop_wl):
        a = repro.run(loop_wl, "dual-queue")
        b = repro.run(loop_wl, "dual-queue", devices=1)
        assert a.result.cycles == b.result.cycles
        assert a.metrics.as_dict() == b.metrics.as_dict()

    def test_run_rejects_bad_devices(self, loop_wl):
        with pytest.raises(ConfigError):
            repro.run(loop_wl, "dual-queue", devices=0)

    def test_backend_for_memoizes_groups(self):
        a = backend_for(KEPLER_K20, devices=3)
        b = backend_for(KEPLER_K20, devices=3)
        assert a is b
        assert backend_for(KEPLER_K20, devices=1) is not a
