"""Unit + property tests for the nested-loop parallelization templates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LOAD_BALANCING_TEMPLATES,
    NESTED_LOOP_TEMPLATES,
    AccessStream,
    NestedLoopWorkload,
    TemplateParams,
    check_schedule,
    resolve,
    split_by_threshold,
)
from repro.errors import ConfigError, LaunchError, PlanError, WorkloadError
from repro.gpusim import FERMI_C2050, KEPLER_K20


def make_workload(trips, seed=0, atomics=False, name="wl"):
    trips = np.asarray(trips, dtype=np.int64)
    nnz = int(trips.sum())
    rng = np.random.default_rng(seed)
    streams = [
        AccessStream("seq", np.arange(nnz, dtype=np.int64) * 4, "load", 4),
        AccessStream("gather", rng.integers(0, max(nnz, 1) * 4, size=nnz) * 4,
                     "load", 4),
        AccessStream("scatter", rng.integers(0, max(nnz, 1), size=nnz) * 4,
                     "store", 4, staged_in_shared=True),
    ]
    atomic_targets = None
    if atomics:
        atomic_targets = rng.integers(0, max(trips.size, 1), size=nnz)
    return NestedLoopWorkload(
        name=name, trip_counts=trips, streams=streams,
        atomic_targets=atomic_targets,
    )


def irregular_trips(n=2000, seed=0):
    rng = np.random.default_rng(seed)
    trips = rng.zipf(1.7, size=n).clip(max=800)
    return trips.astype(np.int64)


class TestWorkloadValidation:
    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            NestedLoopWorkload("w", np.array([], dtype=np.int64))

    def test_rejects_negative_trips(self):
        with pytest.raises(WorkloadError):
            NestedLoopWorkload("w", np.array([-1]))

    def test_rejects_stream_length_mismatch(self):
        with pytest.raises(WorkloadError):
            NestedLoopWorkload(
                "w", np.array([2, 2]),
                streams=[AccessStream("s", np.zeros(3, dtype=np.int64))],
            )

    def test_rejects_atomic_shape_mismatch(self):
        with pytest.raises(WorkloadError):
            NestedLoopWorkload("w", np.array([2]), atomic_targets=np.zeros(5))

    def test_pairs_of_row_major(self):
        wl = make_workload([2, 0, 3])
        pairs, steps = wl.pairs_of(np.array([0, 2]))
        assert pairs.tolist() == [0, 1, 2, 3, 4]
        assert steps.tolist() == [0, 1, 0, 1, 2]

    def test_pairs_of_with_caps(self):
        wl = make_workload([5, 5])
        pairs, steps = wl.pairs_of(np.array([0, 1]), np.array([2, 1]))
        assert pairs.tolist() == [0, 1, 5]
        assert steps.tolist() == [0, 1, 0]

    def test_pairs_of_rejects_excess_caps(self):
        wl = make_workload([2])
        with pytest.raises(WorkloadError):
            wl.pairs_of(np.array([0]), np.array([5]))


class TestSplit:
    def test_split_partition(self):
        trips = np.array([1, 50, 32, 33, 0])
        small, large = split_by_threshold(trips, 32)
        assert small.tolist() == [0, 2, 4]
        assert large.tolist() == [1, 3]

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=200),
           st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_split_is_partition(self, trips, threshold):
        trips = np.array(trips)
        small, large = split_by_threshold(trips, threshold)
        assert small.size + large.size == trips.size
        assert np.all(trips[small] <= threshold)
        assert np.all(trips[large] > threshold)


class TestCheckSchedule:
    def test_valid(self):
        check_schedule({"a": np.array([0, 2]), "b": np.array([1])}, 3)

    def test_missing_iteration(self):
        with pytest.raises(PlanError, match="covers"):
            check_schedule({"a": np.array([0])}, 2)

    def test_duplicate_iteration(self):
        with pytest.raises(PlanError):
            check_schedule({"a": np.array([0, 0])}, 2)

    def test_out_of_range(self):
        with pytest.raises(PlanError):
            check_schedule({"a": np.array([0, 5])}, 2)


class TestRegistry:
    def test_all_templates_instantiable(self):
        for name in NESTED_LOOP_TEMPLATES:
            assert resolve(name, kind="nested-loop").name == name

    def test_unknown_template(self):
        with pytest.raises(PlanError, match="unknown template"):
            resolve("magic", kind="nested-loop")

    def test_load_balancing_subset(self):
        assert set(LOAD_BALANCING_TEMPLATES) <= set(NESTED_LOOP_TEMPLATES)


class TestTemplateRuns:
    @pytest.mark.parametrize("name", sorted(NESTED_LOOP_TEMPLATES))
    def test_schedule_conserves_iterations(self, name):
        wl = make_workload(irregular_trips(500, seed=3), atomics=True)
        run = resolve(name, kind="nested-loop").run(wl, KEPLER_K20, TemplateParams(lb_threshold=16))
        # check_schedule already ran inside run(); sanity-check the result
        total = sum(v.size for v in run.schedule.values())
        assert total == wl.outer_size
        assert run.time_ms > 0
        assert 0 < run.metrics.warp_execution_efficiency <= 1

    @pytest.mark.parametrize("name", sorted(LOAD_BALANCING_TEMPLATES))
    def test_threshold_respected(self, name):
        wl = make_workload(irregular_trips(500, seed=4))
        params = TemplateParams(lb_threshold=24)
        run = resolve(name, kind="nested-loop").run(wl, KEPLER_K20, params)
        phases = run.schedule
        # the "fast path" phase only holds small iterations
        small_key = [k for k in phases if k in ("small-queue", "inline")][0]
        large_key = [k for k in phases if k in ("large-queue", "buffered", "nested")][0]
        assert np.all(wl.trip_counts[phases[small_key]] <= 24)
        assert np.all(wl.trip_counts[phases[large_key]] > 24)

    def test_baseline_single_kernel(self):
        wl = make_workload(irregular_trips(300, seed=5))
        run = resolve("baseline", kind="nested-loop").run(wl, KEPLER_K20)
        assert run.metrics.kernel_calls == 1

    def test_dbuf_global_two_kernels(self):
        wl = make_workload(irregular_trips(300, seed=6))
        run = resolve("dbuf-global", kind="nested-loop").run(wl, KEPLER_K20)
        assert run.metrics.kernel_calls == 2

    def test_dbuf_shared_single_kernel(self):
        wl = make_workload(irregular_trips(300, seed=6))
        run = resolve("dbuf-shared", kind="nested-loop").run(wl, KEPLER_K20)
        assert run.metrics.kernel_calls == 1

    def test_dual_queue_three_kernels(self):
        wl = make_workload(irregular_trips(300, seed=7))
        run = resolve("dual-queue", kind="nested-loop").run(wl, KEPLER_K20)
        assert run.metrics.kernel_calls == 3

    def test_dpar_naive_child_count(self):
        wl = make_workload(irregular_trips(300, seed=8))
        params = TemplateParams(lb_threshold=16)
        _, large = split_by_threshold(wl.trip_counts, 16)
        run = resolve("dpar-naive", kind="nested-loop").run(wl, KEPLER_K20, params)
        assert run.metrics.device_kernel_calls == large.size

    def test_dpar_opt_fewer_children_than_naive(self):
        wl = make_workload(irregular_trips(2000, seed=9))
        params = TemplateParams(lb_threshold=16)
        naive = resolve("dpar-naive", kind="nested-loop").run(wl, KEPLER_K20, params)
        opt = resolve("dpar-opt", kind="nested-loop").run(wl, KEPLER_K20, params)
        assert 0 < opt.metrics.device_kernel_calls
        assert opt.metrics.device_kernel_calls < naive.metrics.device_kernel_calls

    def test_dpar_rejected_on_fermi(self):
        wl = make_workload(irregular_trips(100, seed=10))
        with pytest.raises(LaunchError, match="dynamic parallelism"):
            resolve("dpar-naive", kind="nested-loop").run(wl, FERMI_C2050)
        with pytest.raises(LaunchError, match="dynamic parallelism"):
            resolve("dpar-opt", kind="nested-loop").run(wl, FERMI_C2050)

    def test_dbuf_templates_work_on_fermi(self):
        # the paper's motivation: delayed buffers bring load balancing to
        # devices without nested launch support
        wl = make_workload(irregular_trips(300, seed=11))
        run = resolve("dbuf-shared", kind="nested-loop").run(wl, FERMI_C2050)
        assert run.time_ms > 0


class TestPerformanceShapes:
    """The qualitative results of §III.B must hold on irregular input."""

    @pytest.fixture(scope="class")
    def runs(self):
        wl = make_workload(irregular_trips(4000, seed=12), atomics=True)
        params = TemplateParams(lb_threshold=32)
        return {
            name: resolve(name, kind="nested-loop").run(wl, KEPLER_K20, params)
            for name in NESTED_LOOP_TEMPLATES
        }

    def test_load_balancing_beats_baseline(self, runs):
        base = runs["baseline"].time_ms
        for name in ("dual-queue", "dbuf-global", "dbuf-shared"):
            assert runs[name].time_ms < base, name

    def test_dpar_naive_is_worst(self, runs):
        worst = max(runs.values(), key=lambda r: r.time_ms)
        assert worst.template == "dpar-naive"

    def test_templates_raise_warp_efficiency(self, runs):
        base = runs["baseline"].metrics.warp_execution_efficiency
        for name in ("dual-queue", "dbuf-global", "dbuf-shared", "dpar-opt"):
            assert runs[name].metrics.warp_execution_efficiency > base, name

    def test_lb_threshold_controls_warp_efficiency(self):
        wl = make_workload(irregular_trips(3000, seed=13))
        effs = []
        for lbt in (32, 64, 256, 1024):
            run = resolve("dbuf-shared", kind="nested-loop").run(
                wl, KEPLER_K20, TemplateParams(lb_threshold=lbt)
            )
            effs.append(run.metrics.warp_execution_efficiency)
        # Table II: warp efficiency decreases as lbTHRES grows
        assert effs[0] > effs[-1]

    def test_regular_workload_gains_little(self):
        # On a regular nested loop, load balancing has nothing to fix.
        wl = make_workload(np.full(3000, 24), seed=14, name="regular")
        base = resolve("baseline", kind="nested-loop").run(wl, KEPLER_K20)
        dbuf = resolve("dbuf-shared", kind="nested-loop").run(wl, KEPLER_K20)
        assert base.metrics.warp_execution_efficiency > 0.9
        assert dbuf.time_ms == pytest.approx(base.time_ms, rel=0.25)


class TestParams:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TemplateParams(lb_threshold=0)
        with pytest.raises(ConfigError):
            TemplateParams(thread_block=8)
        with pytest.raises(ConfigError):
            TemplateParams(streams_per_block=0)

    def test_replace(self):
        p = TemplateParams().replace(lb_threshold=128)
        assert p.lb_threshold == 128

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            TemplateParams(64)

    def test_grid_clamp_error_names_the_knob(self):
        from repro.core import NestedLoopTemplate

        # the message must point at a real attribute users can enlarge
        assert hasattr(TemplateParams(), "max_grid_blocks")
        with pytest.raises(PlanError, match="max_grid_blocks"):
            NestedLoopTemplate._grid_for(10_000, 32, 8)
        # non-overflowing grids still round up
        assert NestedLoopTemplate._grid_for(100, 32, 8) == 4
