"""End-to-end integration: every (application x template) combination.

A full cross-product sweep on tiny datasets: each combination must run,
produce a consistent AppRun, and keep the functional result identical to
the baseline template's.  This is the broadest single integration net in
the suite — a regression anywhere in workload construction, mapping,
executor or profiler surfaces here.
"""

import numpy as np
import pytest

from repro.apps import (
    BCApp,
    BFSApp,
    PageRankApp,
    SpMVApp,
    SSSPApp,
    TreeDescendantsApp,
    TreeHeightsApp,
)
from repro.core import NESTED_LOOP_TEMPLATES, TREE_TEMPLATES, TemplateParams
from repro.gpusim import KEPLER_K20
from repro.graphs import citeseer_like
from repro.trees import generate_tree

PARAMS = TemplateParams(lb_threshold=16)


@pytest.fixture(scope="module")
def graph():
    return citeseer_like(scale=0.005, seed=11)


@pytest.fixture(scope="module")
def tree():
    return generate_tree(depth=4, outdegree=8, sparsity=1.0, seed=11)


def app_instances(graph):
    return [
        SpMVApp(graph, seed=1),
        SSSPApp(graph),
        PageRankApp(graph, n_iters=3),
        BCApp(graph, n_sources=2, seed=1),
        BFSApp(graph),
    ]


class TestNestedLoopCrossProduct:
    @pytest.mark.parametrize("template", sorted(NESTED_LOOP_TEMPLATES))
    def test_all_apps_under_template(self, graph, template):
        for app in app_instances(graph):
            run = app.run(template, KEPLER_K20, PARAMS)
            # structural consistency of the AppRun
            assert run.app == app.name
            assert run.template == template
            assert run.gpu_time_ms > 0
            assert run.cpu_time_ms > 0
            assert run.speedup == pytest.approx(
                run.cpu_time_ms / run.gpu_time_ms
            )
            m = run.metrics
            assert 0 < m.warp_execution_efficiency <= 1
            assert 0 < m.gld_efficiency <= 1
            assert m.kernel_calls >= 1
            assert 0 <= m.sm_utilization <= 1

    @pytest.mark.parametrize("template", sorted(NESTED_LOOP_TEMPLATES))
    def test_results_match_baseline(self, graph, template):
        for app in app_instances(graph):
            base = app.run("baseline", KEPLER_K20, PARAMS)
            other = app.run(template, KEPLER_K20, PARAMS)
            a = np.asarray(base.result, dtype=float)
            b = np.asarray(other.result, dtype=float)
            np.testing.assert_array_equal(a, b, err_msg=f"{app.name}/{template}")


class TestTreeCrossProduct:
    @pytest.mark.parametrize("template", sorted(TREE_TEMPLATES))
    @pytest.mark.parametrize("app_cls", [TreeDescendantsApp, TreeHeightsApp])
    def test_tree_apps_under_template(self, tree, template, app_cls):
        run = app_cls(tree).run(template, KEPLER_K20, PARAMS)
        assert run.gpu_time_ms > 0
        assert run.metrics.kernel_calls >= 1
        # functional result independent of template
        np.testing.assert_array_equal(run.result, app_cls(tree).compute())
