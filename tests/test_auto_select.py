"""The parallelization IR + auto-select pass layer.

Four contracts pinned here:

1. **bit-exactness** — ``repro.run(workload)`` (auto) produces the exact
   run the selected template produces when named directly, on both
   workload families and on every registry template's home workload;
2. **repr-stability** — IR structural keys survive an
   ``ast.literal_eval(repr(...))`` round trip and fingerprints are
   deterministic across rebuilds (they feed disk-cache keys);
3. **pass discipline** — promote/consolidate are idempotent and preserve
   the root's total trip count;
4. **plumbing** — selection decisions are cached, and the serving layer
   accepts ``submit(workload)`` with the config's default ``"auto"``.
"""

import ast

import numpy as np
import pytest

import repro
from repro.core import RecursiveTreeWorkload, TemplateParams
from repro.core.analysis import clear_analysis_cache, get_analysis
from repro.core.registry import ALL_TEMPLATES, canonical_name
from repro.core.workload import NestedLoopWorkload
from repro.errors import IRError, WorkloadError
from repro.gpusim import FERMI_C2050, KEPLER_K20
from repro.ir import (
    PassConfig,
    PassContext,
    TripInfo,
    auto_select,
    clear_selection_cache,
    consolidate_pass,
    from_workload,
    ir_kind_of,
    par,
    promote_pass,
    run_pipeline,
    seq,
    validate,
)
from repro.trees.generator import generate_tree


@pytest.fixture(scope="module")
def loop_workload():
    rng = np.random.default_rng(11)
    return NestedLoopWorkload("parity-loop", rng.integers(0, 40, size=200))


@pytest.fixture(scope="module")
def tree_workload():
    return RecursiveTreeWorkload(generate_tree(depth=5, outdegree=3, seed=3))


@pytest.fixture(autouse=True)
def _fresh_selection_cache():
    clear_selection_cache()
    yield
    clear_selection_cache()


def _workload_for(kind, loop_workload, tree_workload):
    return loop_workload if kind == "nested-loop" else tree_workload


class TestBitExactness:
    @pytest.mark.parametrize("kind", ["nested-loop", "tree"])
    def test_auto_equals_named(self, kind, loop_workload, tree_workload):
        workload = _workload_for(kind, loop_workload, tree_workload)
        auto = repro.run(workload)
        named = repro.run(workload, auto.selection.template,
                          params=auto.selection.params)
        assert auto.time_ms == named.time_ms
        assert auto.result.cycles == named.result.cycles
        assert auto.metrics.as_dict() == named.metrics.as_dict()
        assert canonical_name(auto.template) == auto.selection.template

    @pytest.mark.parametrize("name", sorted(ALL_TEMPLATES))
    def test_every_registry_workload(self, name, loop_workload,
                                     tree_workload):
        # auto must stay bit-exact on each template's home workload family
        kind = ALL_TEMPLATES[name][0]
        workload = _workload_for(kind, loop_workload, tree_workload)
        selection = auto_select(workload)
        auto = repro.run(workload, "auto")
        named = repro.run(workload, selection.template,
                          params=selection.params)
        assert auto.time_ms == named.time_ms
        assert auto.result.cycles == named.result.cycles

    def test_selection_attached_only_on_auto(self, loop_workload):
        assert repro.run(loop_workload).selection is not None
        assert repro.run(loop_workload, "dual-queue").selection is None


class TestReprStability:
    @pytest.mark.parametrize("kind", ["nested-loop", "tree"])
    def test_key_literal_eval_round_trip(self, kind, loop_workload,
                                         tree_workload):
        workload = _workload_for(kind, loop_workload, tree_workload)
        ir = from_workload(workload)
        key = ir.key()
        assert ast.literal_eval(repr(key)) == key
        final = run_pipeline(ir).ir
        assert ast.literal_eval(repr(final.key())) == final.key()

    def test_fingerprint_deterministic_across_rebuilds(self, loop_workload):
        a = from_workload(loop_workload)
        clear_analysis_cache()
        b = from_workload(loop_workload)
        assert a.key() == b.key()
        assert a.fingerprint() == b.fingerprint()

    def test_pass_config_key_is_literal(self):
        cfg = PassConfig(lb_threshold=64)
        assert ast.literal_eval(repr(cfg.key())) == cfg.key()

    def test_selection_fingerprint_stable(self, loop_workload):
        first = auto_select(loop_workload).fingerprint
        clear_selection_cache()
        clear_analysis_cache()
        second = auto_select(loop_workload).fingerprint
        assert first == second


class TestPassDiscipline:
    def _ctx(self, workload):
        return PassContext(split_counts=get_analysis(workload).split_counts)

    @pytest.mark.parametrize("kind", ["nested-loop", "tree"])
    def test_passes_idempotent(self, kind, loop_workload, tree_workload):
        workload = _workload_for(kind, loop_workload, tree_workload)
        cfg = PassConfig()
        ctx = self._ctx(workload) if kind == "nested-loop" else PassContext()
        once = run_pipeline(from_workload(workload), cfg, ctx).ir
        promoted_again, _ = promote_pass(once, cfg, ctx)
        consolidated_again, _ = consolidate_pass(promoted_again, cfg, ctx)
        assert promoted_again.key() == once.key()
        assert consolidated_again.key() == once.key()

    @pytest.mark.parametrize("kind", ["nested-loop", "tree"])
    def test_total_trips_preserved(self, kind, loop_workload, tree_workload):
        workload = _workload_for(kind, loop_workload, tree_workload)
        ir = from_workload(workload)
        cfg = PassConfig()
        ctx = self._ctx(workload) if kind == "nested-loop" else PassContext()
        final = run_pipeline(ir, cfg, ctx).ir
        assert final.trips == ir.trips
        totals_before = {n.label: n.trips.total for n in ir.walk()
                         if n.kind != "split"}
        split_totals = {n.label: n.trips.total for n in final.walk()
                        if n.kind == "split"}
        for label, total in split_totals.items():
            assert total == totals_before[label]

    def test_pipeline_validates_output(self, loop_workload):
        final = run_pipeline(from_workload(loop_workload)).ir
        assert validate(final) is final

    def test_hand_built_ir_without_histogram(self):
        # no split_counts: straddling subloops promote whole on the mean
        inner = par("inner", TripInfo(10, 40, 1, 39))
        outer = seq("outer", TripInfo(1, 10, 10, 10), children=(inner,))
        wrapped = par("root", TripInfo(1, 1, 1, 1), children=(outer,))
        rewritten, _ = promote_pass(validate(wrapped),
                                    PassConfig(lb_threshold=32),
                                    PassContext())
        inner = rewritten.find("inner")
        assert inner.mapping in ("thread", "launch")

    def test_invalid_workload_kind_rejected(self):
        with pytest.raises(WorkloadError):
            ir_kind_of(object())
        with pytest.raises(WorkloadError):
            from_workload(object())


class TestSelectionCaching:
    def test_memory_cache_hit(self, loop_workload):
        first = auto_select(loop_workload)
        second = auto_select(loop_workload)
        assert second is first

    def test_device_changes_selection_key(self, loop_workload):
        k20 = auto_select(loop_workload, device=KEPLER_K20)
        fermi = auto_select(loop_workload, device=FERMI_C2050)
        assert k20 is not fermi

    def test_params_feed_pass_config(self, loop_workload):
        selection = auto_select(loop_workload,
                                params=TemplateParams(lb_threshold=64))
        assert selection.params.lb_threshold in (32, 64, 128, 256)

    def test_no_candidates_is_ir_error(self):
        assert issubclass(IRError, repro.PlanError)


class TestServiceAuto:
    def test_submit_workload_only_uses_auto(self, loop_workload):
        with repro.serve(max_batch=4, workers=1) as svc:
            response = svc.request(loop_workload)
        assert response.status == "ok"
        assert canonical_name(response.template) in ALL_TEMPLATES

    def test_named_submit_still_works(self, loop_workload):
        with repro.serve(max_batch=4, workers=1) as svc:
            response = svc.request("dual-queue", loop_workload)
        assert response.status == "ok"
        assert response.template == "dual-queue"
