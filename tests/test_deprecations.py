"""The hard-deprecated legacy entry points: warn loudly, forward exactly.

``get_template`` and the ``exact=`` kwarg are kept only as shims; these
tests pin down both halves of that contract — a :class:`DeprecationWarning`
is always emitted, and the forwarded behavior is identical to the
replacement API.
"""

import warnings

import numpy as np
import pytest

import repro
from repro.core.registry import get_template, resolve
from repro.core.workload import NestedLoopWorkload
from repro.errors import ConfigError, PlanError


@pytest.fixture()
def workload():
    rng = np.random.default_rng(7)
    return NestedLoopWorkload("deprecations", rng.integers(0, 25, size=150))


class TestGetTemplateShim:
    def test_warns(self):
        with pytest.warns(DeprecationWarning, match="get_template"):
            get_template("dual-queue")

    @pytest.mark.parametrize("name", [
        "thread-mapped", "block-mapped", "dual-queue", "dbuf-global",
        "dbuf-shared", "dpar-naive", "dpar-opt", "baseline",
    ])
    def test_forwards_to_resolve(self, name):
        with pytest.warns(DeprecationWarning):
            legacy = get_template(name)
        modern = resolve(name, kind="nested-loop")
        assert type(legacy) is type(modern)
        assert legacy.name == modern.name

    def test_keeps_kind_restriction(self):
        # the shim is the nested-loop lookup; tree names must still fail
        with pytest.warns(DeprecationWarning):
            with pytest.raises(PlanError, match="tree template"):
                get_template("rec-hier")

    def test_unknown_name_still_fails(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(PlanError, match="unknown template"):
                get_template("no-such-template")


class TestExactKwargAlias:
    def test_exact_true_warns_and_forwards(self, workload):
        with pytest.warns(DeprecationWarning, match="exact= kwarg"):
            legacy = repro.run("dbuf-global", workload, exact=True)
        modern = repro.run("dbuf-global", workload, engine="exact")
        assert legacy.time_ms == modern.time_ms
        assert legacy.metrics.as_dict() == modern.metrics.as_dict()

    def test_exact_false_warns_and_forwards(self, workload):
        with pytest.warns(DeprecationWarning, match="exact= kwarg"):
            legacy = repro.run("dbuf-global", workload, exact=False)
        modern = repro.run("dbuf-global", workload, engine="fast")
        assert legacy.time_ms == modern.time_ms

    def test_compare_forwards_too(self, workload):
        with pytest.warns(DeprecationWarning, match="exact= kwarg"):
            legacy = repro.compare(["dual-queue"], workload, exact=True)
        modern = repro.compare(["dual-queue"], workload, engine="exact")
        assert legacy[0].time_ms == modern[0].time_ms

    def test_conflict_rejected(self, workload):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigError, match="conflicting engine"):
                repro.run("dbuf-global", workload,
                          engine="fast", exact=True)

    def test_modern_path_is_warning_free(self, workload):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.run("dbuf-global", workload, engine="exact")
            resolve("dual-queue", kind="nested-loop")
