"""Contract for the retired and transitional legacy entry points.

``get_template`` and the ``exact=`` kwarg are **gone** — these tests pin
the removal (importing or passing them fails loudly, not silently).  The
one remaining transitional surface is the argument order of the facade:
``repro.run(name, workload)`` still works but warns, and forwards exactly
to the modern workload-first call.
"""

import warnings

import numpy as np
import pytest

import repro
from repro.core.workload import NestedLoopWorkload


@pytest.fixture()
def workload():
    rng = np.random.default_rng(7)
    return NestedLoopWorkload("deprecations", rng.integers(0, 25, size=150))


class TestGetTemplateRemoved:
    def test_import_fails(self):
        with pytest.raises(ImportError):
            from repro.core.registry import get_template  # noqa: F401

    def test_not_in_core_namespace(self):
        import repro.core
        import repro.core.registry
        assert not hasattr(repro.core, "get_template")
        assert not hasattr(repro.core.registry, "get_template")
        assert "get_template" not in repro.core.registry.__all__


class TestExactKwargRemoved:
    def test_run_rejects_exact(self, workload):
        with pytest.raises(TypeError):
            repro.run(workload, "dbuf-global", exact=True)

    def test_compare_rejects_exact(self, workload):
        with pytest.raises(TypeError):
            repro.compare(workload, ["dual-queue"], exact=True)

    def test_engine_is_the_replacement(self, workload):
        fast = repro.run(workload, "dbuf-global", engine="fast")
        exact = repro.run(workload, "dbuf-global", engine="exact")
        assert fast.time_ms == pytest.approx(exact.time_ms, rel=1e-6)


class TestLegacyArgumentOrder:
    def test_run_warns_and_forwards(self, workload):
        with pytest.warns(DeprecationWarning, match="workload first"):
            legacy = repro.run("dbuf-global", workload)
        modern = repro.run(workload, "dbuf-global")
        assert legacy.time_ms == modern.time_ms
        assert legacy.metrics.as_dict() == modern.metrics.as_dict()

    def test_compare_warns_and_forwards(self, workload):
        with pytest.warns(DeprecationWarning, match="workload first"):
            legacy = repro.compare(["dual-queue"], workload)
        modern = repro.compare(workload, ["dual-queue"])
        assert legacy[0].time_ms == modern[0].time_ms

    def test_warning_names_the_caller(self, workload):
        with pytest.warns(DeprecationWarning, match=r"repro\.run\(\)"):
            repro.run("dual-queue", workload)
        with pytest.warns(DeprecationWarning, match=r"repro\.compare\(\)"):
            repro.compare("dual-queue", workload)

    def test_modern_path_is_warning_free(self, workload):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.run(workload, "dbuf-global", engine="exact")
            repro.compare(workload, ["dual-queue"])
