"""Tests for the (template, lbTHRES) autotuner."""

import numpy as np
import pytest

from repro.core import NestedLoopWorkload, TemplateParams, autotune, sweep
from repro.core.workload import AccessStream
from repro.errors import PlanError
from repro.gpusim import FERMI_C2050, KEPLER_K20


def workload(seed=0, n=1500):
    rng = np.random.default_rng(seed)
    trips = rng.zipf(1.8, size=n).clip(max=500).astype(np.int64)
    nnz = int(trips.sum())
    return NestedLoopWorkload(
        name="wl",
        trip_counts=trips,
        streams=[
            AccessStream("seq", np.arange(nnz) * 4, "load", 4),
            AccessStream("gather", rng.integers(0, nnz, size=nnz) * 4, "load", 4),
        ],
    )


class TestSweep:
    def test_produces_all_combinations(self):
        runs = sweep(workload(), KEPLER_K20,
                     templates=("dbuf-shared", "dual-queue"),
                     thresholds=(32, 128))
        assert len(runs) == 4
        seen = {(r.template, r.params.lb_threshold) for r in runs}
        assert ("dbuf-shared", 32) in seen
        assert ("dual-queue", 128) in seen

    def test_skips_dpar_on_fermi(self):
        runs = sweep(workload(), FERMI_C2050,
                     templates=("dbuf-shared", "dpar-opt"),
                     thresholds=(32,))
        assert {r.template for r in runs} == {"dbuf-shared"}

    def test_raises_when_nothing_runnable(self):
        with pytest.raises(PlanError):
            sweep(workload(), FERMI_C2050,
                  templates=("dpar-naive", "dpar-opt"), thresholds=(32,))


class TestAutotune:
    def test_returns_fastest(self):
        runs = sweep(workload(), KEPLER_K20,
                     templates=("dbuf-shared", "dpar-naive"),
                     thresholds=(32,))
        best = autotune(workload(), KEPLER_K20,
                        templates=("dbuf-shared", "dpar-naive"),
                        thresholds=(32,))
        assert best.time_ms == min(r.time_ms for r in runs)
        assert best.template == "dbuf-shared"  # naive never wins

    def test_respects_base_params(self):
        best = autotune(
            workload(), KEPLER_K20,
            templates=("dbuf-shared",), thresholds=(64,),
            base_params=TemplateParams(lb_block=128),
        )
        assert best.params.lb_block == 128
        assert best.params.lb_threshold == 64
