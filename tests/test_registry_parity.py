"""Registry/template parity: every canonical name is fully usable.

One parametrized sweep over ``ALL_TEMPLATES`` proving, for each canonical
name, that the registry resolves it, the template builds and runs on a
small workload of its kind, and its plan key round-trips repr-stably —
the property the disk artifact cache depends on (keys are hashed by
``repr`` across processes).
"""

import ast

import numpy as np
import pytest

from repro.core.base import plan_key
from repro.core.params import TemplateParams
from repro.core.recursive import RecursiveTreeWorkload
from repro.core.registry import (
    ALL_TEMPLATES,
    TEMPLATE_ALIASES,
    canonical_name,
    resolve,
)
from repro.core.workload import NestedLoopWorkload
from repro.gpusim.config import KEPLER_K20
from repro.trees.generator import generate_tree


@pytest.fixture(scope="module")
def small_loop():
    rng = np.random.default_rng(11)
    return NestedLoopWorkload("parity-loop", rng.integers(0, 40, size=200))


@pytest.fixture(scope="module")
def small_tree():
    return RecursiveTreeWorkload(generate_tree(depth=5, outdegree=3, seed=3))


def _workload_for(kind, small_loop, small_tree):
    return small_loop if kind == "nested-loop" else small_tree


@pytest.mark.parametrize("name", sorted(ALL_TEMPLATES))
def test_canonical_name_resolves_and_runs(name, small_loop, small_tree):
    kind, cls = ALL_TEMPLATES[name]
    tmpl = resolve(name)
    assert type(tmpl) is cls
    assert canonical_name(tmpl.name) == name

    run = tmpl.run(_workload_for(kind, small_loop, small_tree), KEPLER_K20)
    assert run.result.cycles > 0
    assert run.metrics.time_ms > 0


@pytest.mark.parametrize("name", sorted(ALL_TEMPLATES))
def test_plan_key_is_repr_stable(name, small_loop, small_tree):
    kind, _ = ALL_TEMPLATES[name]
    tmpl = resolve(name)
    wl = _workload_for(kind, small_loop, small_tree)
    key = plan_key(tmpl, wl.fingerprint(), KEPLER_K20, TemplateParams())
    # the artifact cache hashes repr(key): reconstructing the key from its
    # repr must reproduce it exactly, using only literals
    assert ast.literal_eval(repr(key)) == key
    # and resolving the same name again yields the identical key
    key2 = plan_key(resolve(name), wl.fingerprint(), KEPLER_K20,
                    TemplateParams())
    assert repr(key2) == repr(key)


def test_plan_keys_distinct_across_templates(small_loop, small_tree):
    keys = set()
    for name, (kind, _) in ALL_TEMPLATES.items():
        wl = _workload_for(kind, small_loop, small_tree)
        keys.add(plan_key(resolve(name), wl.fingerprint(), KEPLER_K20,
                          TemplateParams()))
    assert len(keys) == len(ALL_TEMPLATES)


@pytest.mark.parametrize("alias,target", sorted(TEMPLATE_ALIASES.items()))
def test_aliases_resolve_to_canonical(alias, target):
    assert canonical_name(alias) == target
    assert type(resolve(alias)) is ALL_TEMPLATES[target][1]


@pytest.mark.parametrize("name", sorted(ALL_TEMPLATES))
def test_underscore_spelling_accepted(name):
    assert canonical_name(name.replace("-", "_")) == name
