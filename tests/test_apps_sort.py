"""Tests for the Fig. 2 sort case study."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.sort import (
    SORT_VARIANTS,
    SortApp,
    merge_sort,
    quicksort,
)
from repro.errors import LaunchError, WorkloadError
from repro.gpusim import FERMI_C2050


class TestMergeSort:
    def test_sorts_random(self):
        rng = np.random.default_rng(0)
        arr = rng.integers(0, 1 << 31, size=10_000)
        out, widths = merge_sort(arr)
        np.testing.assert_array_equal(out, np.sort(arr))
        assert widths[-1] >= arr.size

    def test_sorts_already_sorted(self):
        arr = np.arange(1000)
        out, _ = merge_sort(arr)
        np.testing.assert_array_equal(out, arr)

    def test_sorts_reverse(self):
        arr = np.arange(1000)[::-1]
        out, _ = merge_sort(arr)
        np.testing.assert_array_equal(out, np.arange(1000))

    def test_duplicates(self):
        arr = np.array([3, 1, 3, 1, 3, 1, 2, 2])
        out, _ = merge_sort(arr)
        np.testing.assert_array_equal(out, np.sort(arr))

    def test_empty(self):
        out, widths = merge_sort(np.array([], dtype=np.int64))
        assert out.size == 0
        assert widths == []

    def test_single(self):
        out, _ = merge_sort(np.array([7]))
        assert out.tolist() == [7]

    def test_non_power_of_two(self):
        rng = np.random.default_rng(1)
        arr = rng.integers(0, 1000, size=777)
        out, _ = merge_sort(arr)
        np.testing.assert_array_equal(out, np.sort(arr))

    def test_rejects_2d(self):
        with pytest.raises(WorkloadError):
            merge_sort(np.zeros((2, 2)))

    @given(st.lists(st.integers(0, 2**31 - 1), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy_sort(self, values):
        arr = np.array(values, dtype=np.int64)
        out, _ = merge_sort(arr)
        np.testing.assert_array_equal(out, np.sort(arr))


class TestQuicksort:
    def test_sorts_random(self):
        rng = np.random.default_rng(2)
        arr = rng.integers(0, 1 << 31, size=10_000)
        out, records = quicksort(arr)
        np.testing.assert_array_equal(out, np.sort(arr))
        assert records[0].parent == -1
        assert records[0].size == arr.size

    def test_depth_limit_forces_leaves(self):
        rng = np.random.default_rng(3)
        arr = rng.integers(0, 1000, size=5000)
        _, records = quicksort(arr, max_depth=2, leaf_size=4)
        assert all(r.is_leaf for r in records if r.depth >= 2)

    def test_leaf_size_respected(self):
        rng = np.random.default_rng(4)
        arr = rng.integers(0, 1 << 20, size=5000)
        _, records = quicksort(arr, leaf_size=256)
        for r in records:
            if not r.is_leaf:
                assert r.size > 256

    def test_parents_precede_children(self):
        rng = np.random.default_rng(5)
        arr = rng.integers(0, 1 << 20, size=2000)
        _, records = quicksort(arr)
        for k, r in enumerate(records):
            assert r.parent < k

    def test_median_of_three_fewer_records_on_sorted(self):
        arr = np.arange(20_000)
        _, naive = quicksort(arr, median_of_three=False, max_depth=30)
        _, med = quicksort(arr, median_of_three=True, max_depth=30)
        assert len(med) <= len(naive) * 2  # both fine on sorted input

    @given(st.lists(st.integers(0, 10_000), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy_sort(self, values):
        arr = np.array(values, dtype=np.int64)
        if arr.size == 0:
            return
        out, _ = quicksort(arr, leaf_size=8)
        np.testing.assert_array_equal(out, np.sort(arr))


class TestSortApp:
    @pytest.fixture(scope="class")
    def runs(self):
        rng = np.random.default_rng(6)
        arr = rng.integers(0, 1 << 31, size=50_000)
        app = SortApp(arr)
        return {v: app.run(v) for v in SORT_VARIANTS}

    def test_all_variants_sort_correctly(self, runs):
        for run in runs.values():
            assert np.all(np.diff(run.result) >= 0)

    def test_mergesort_wins(self, runs):
        # Fig. 2's conclusion: the flat kernel beats both recursive sorts
        assert runs["mergesort"].time_ms < runs["quicksort-advanced"].time_ms
        assert runs["mergesort"].time_ms < runs["quicksort-simple"].time_ms

    def test_advanced_beats_simple(self, runs):
        assert (runs["quicksort-advanced"].time_ms
                < runs["quicksort-simple"].time_ms)

    def test_mergesort_has_no_device_launches(self, runs):
        assert runs["mergesort"].device_kernel_calls == 0

    def test_quicksorts_use_dynamic_parallelism(self, runs):
        assert runs["quicksort-simple"].device_kernel_calls > 0
        assert runs["quicksort-advanced"].device_kernel_calls > 0

    def test_quicksort_rejected_on_fermi(self):
        app = SortApp(np.arange(100)[::-1])
        with pytest.raises(LaunchError):
            app.run("quicksort-simple", FERMI_C2050)

    def test_mergesort_runs_on_fermi(self):
        app = SortApp(np.arange(100)[::-1])
        run = app.run("mergesort", FERMI_C2050)
        assert np.all(np.diff(run.result) >= 0)

    def test_unknown_variant(self):
        with pytest.raises(WorkloadError):
            SortApp(np.arange(4)).run("heapsort")

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            SortApp(np.array([]))
