"""Unit/integration tests for the event-driven executor."""

import numpy as np
import pytest

from repro.errors import LaunchError
from repro.gpusim.config import FERMI_C2050, KEPLER_K20
from repro.gpusim.executor import GpuExecutor
from repro.gpusim.kernels import KernelCosts, Launch, LaunchGraph


def _launch(name="k", blocks=None, block_size=64, tail=0.0, floor=None, **kw):
    if blocks is None:
        blocks = [1000.0]
    return Launch(
        name=name,
        block_size=block_size,
        costs=KernelCosts(
            block_cycles=np.array(blocks, dtype=float),
            block_floor=None if floor is None else np.array(floor, dtype=float),
            serial_tail=tail,
        ),
        **kw,
    )


def _run(*launches, config=KEPLER_K20, **kw):
    graph = LaunchGraph()
    for l in launches:
        graph.add(l)
    return GpuExecutor(config, **kw).run(graph), graph


class TestBasicExecution:
    def test_empty_graph(self):
        result = GpuExecutor(KEPLER_K20).run(LaunchGraph())
        assert result.cycles == 0.0
        assert result.n_launches == 0

    def test_single_block_duration(self):
        result, _ = _run(_launch(blocks=[10_000.0]))
        overhead = KEPLER_K20.us_to_cycles(KEPLER_K20.host_launch_overhead_us)
        assert result.cycles == pytest.approx(overhead + 10_000.0)

    def test_blocks_spread_over_sms(self):
        # 13 equal blocks on 13 SMs run concurrently
        result, _ = _run(_launch(blocks=[5000.0] * 13))
        overhead = KEPLER_K20.us_to_cycles(KEPLER_K20.host_launch_overhead_us)
        assert result.cycles == pytest.approx(overhead + 5000.0)

    def test_processor_sharing_within_sm(self):
        # 26 equal blocks: 2 per SM sharing issue bandwidth -> 2x duration
        result, _ = _run(_launch(blocks=[5000.0] * 26))
        overhead = KEPLER_K20.us_to_cycles(KEPLER_K20.host_launch_overhead_us)
        assert result.cycles == pytest.approx(overhead + 10_000.0)

    def test_single_large_block_underutilizes(self):
        # one huge block: the paper's block-level imbalance story
        result, _ = _run(_launch(blocks=[13_000.0] + [10.0] * 12))
        assert result.sm_utilization < 0.15

    def test_floor_enforced(self):
        result, _ = _run(_launch(blocks=[100.0], floor=[50_000.0]))
        overhead = KEPLER_K20.us_to_cycles(KEPLER_K20.host_launch_overhead_us)
        assert result.cycles == pytest.approx(overhead + 50_000.0)

    def test_serial_tail_extends_kernel(self):
        r1, _ = _run(_launch(blocks=[100.0]))
        r2, _ = _run(_launch(blocks=[100.0], tail=9000.0))
        assert r2.cycles == pytest.approx(r1.cycles + 9000.0)

    def test_zero_work_blocks_complete(self):
        result, _ = _run(_launch(blocks=[0.0, 0.0, 0.0]))
        assert result.cycles > 0  # just the launch overhead
        assert result.n_launches == 1

    def test_records_disabled_by_default(self):
        result, _ = _run(_launch())
        assert result.records == []

    def test_records_enabled(self):
        result, _ = _run(_launch(name="probe"), record_timeline=True)
        assert len(result.records) == 1
        rec = result.records[0]
        assert rec.name == "probe"
        assert rec.end_cycles > rec.start_cycles


class TestStreams:
    def test_same_stream_serializes(self):
        a = _launch(name="a", blocks=[8000.0], stream=0)
        b = _launch(name="b", blocks=[8000.0], stream=0)
        result, _ = _run(a, b)
        assert result.cycles > 16_000.0

    def test_different_streams_overlap(self):
        a = _launch(name="a", blocks=[8000.0], stream=0)
        b = _launch(name="b", blocks=[8000.0], stream=1)
        result, _ = _run(a, b)
        overhead = KEPLER_K20.us_to_cycles(KEPLER_K20.host_launch_overhead_us)
        assert result.cycles == pytest.approx(overhead + 8000.0, rel=0.01)

    def test_stream_order_preserved(self):
        launches = [
            _launch(name=f"k{i}", blocks=[1000.0], stream=0) for i in range(4)
        ]
        result, _ = _run(*launches, record_timeline=True)
        starts = {r.name: r.start_cycles for r in result.records}
        assert starts["k0"] < starts["k1"] < starts["k2"] < starts["k3"]


class TestDynamicParallelism:
    def test_child_runs_after_parent_block(self):
        graph = LaunchGraph()
        parent = graph.add(_launch(name="parent", blocks=[1000.0]))
        graph.add(_launch(name="child", blocks=[500.0], parent=parent))
        result = GpuExecutor(KEPLER_K20, record_timeline=True).run(graph)
        recs = {r.name: r for r in result.records}
        assert recs["child"].start_cycles >= recs["parent"].end_cycles - 1e-6
        assert result.n_device_launches == 1

    def test_children_overlap_remaining_parent_blocks(self):
        # Parent has one fast block (issues child) and one slow block;
        # the child should start long before the slow block finishes.
        graph = LaunchGraph()
        parent = graph.add(_launch(name="parent", blocks=[100.0, 500_000.0]))
        graph.add(_launch(name="child", blocks=[100.0], parent=parent,
                          parent_block=0))
        result = GpuExecutor(KEPLER_K20, record_timeline=True).run(graph)
        recs = {r.name: r for r in result.records}
        assert recs["child"].end_cycles < recs["parent"].end_cycles

    def test_launch_overhead_dominates_small_children(self):
        # 100 tiny children each pay GMU service + latency
        graph = LaunchGraph()
        parent = graph.add(_launch(name="parent", blocks=[100.0]))
        graph.add(_launch(name="child", blocks=[1.0], parent=parent,
                          count=100, device_stream=1))
        # separate graph: one child doing all the work at once
        graph2 = LaunchGraph()
        parent2 = graph2.add(_launch(name="parent", blocks=[100.0]))
        graph2.add(_launch(name="bigchild", blocks=[100.0], parent=parent2))
        many = GpuExecutor(KEPLER_K20).run(graph)
        one = GpuExecutor(KEPLER_K20).run(graph2)
        assert many.cycles > 5 * one.cycles

    def test_same_device_stream_serializes_children(self):
        def build(streams):
            graph = LaunchGraph()
            parent = graph.add(_launch(name="p", blocks=[100.0]))
            for i in range(8):
                graph.add(_launch(
                    name=f"c{i}", blocks=[200_000.0], parent=parent,
                    device_stream=i % streams,
                ))
            return graph
        serial = GpuExecutor(KEPLER_K20).run(build(1))
        concurrent = GpuExecutor(KEPLER_K20).run(build(8))
        assert serial.cycles > 3 * concurrent.cycles

    def test_parent_completion_waits_for_children(self):
        graph = LaunchGraph()
        parent = graph.add(_launch(name="p", blocks=[100.0], stream=0))
        graph.add(_launch(name="c", blocks=[900_000.0], parent=parent))
        graph.add(_launch(name="after", blocks=[10.0], stream=0))
        result = GpuExecutor(KEPLER_K20, record_timeline=True).run(graph)
        recs = {r.name: r for r in result.records}
        assert recs["after"].start_cycles >= recs["c"].end_cycles - 1e-6

    def test_fermi_rejects_device_launches(self):
        graph = LaunchGraph()
        parent = graph.add(_launch(name="p", blocks=[100.0]))
        graph.add(_launch(name="c", blocks=[100.0], parent=parent))
        with pytest.raises(LaunchError, match="dynamic parallelism"):
            GpuExecutor(FERMI_C2050).run(graph)

    def test_instance_limit(self):
        graph = LaunchGraph()
        parent = graph.add(_launch(name="p", blocks=[100.0]))
        graph.add(_launch(name="c", blocks=[1.0], parent=parent, count=100))
        with pytest.raises(LaunchError, match="instance limit"):
            GpuExecutor(KEPLER_K20, max_launch_instances=50).run(graph)

    def test_nesting_depth_validated(self):
        shallow = KEPLER_K20.replace(max_launch_depth=1)
        graph = LaunchGraph()
        a = graph.add(_launch(name="a", blocks=[10.0]))
        b = graph.add(_launch(name="b", blocks=[10.0], parent=a))
        graph.add(_launch(name="c", blocks=[10.0], parent=b))
        with pytest.raises(LaunchError, match="nesting depth"):
            GpuExecutor(shallow).run(graph)


class TestLaunchGraphValidation:
    def test_unknown_parent_rejected(self):
        graph = LaunchGraph()
        with pytest.raises(LaunchError, match="unknown parent"):
            graph.add(_launch(parent=5))

    def test_parent_block_out_of_range(self):
        graph = LaunchGraph()
        p = graph.add(_launch(blocks=[1.0]))
        with pytest.raises(LaunchError, match="block"):
            graph.add(_launch(parent=p, parent_block=3))

    def test_bulk_host_launch_rejected(self):
        graph = LaunchGraph()
        graph.add(_launch(count=4))
        with pytest.raises(LaunchError, match="bulk"):
            GpuExecutor(KEPLER_K20).run(graph)

    def test_counters_aggregate_includes_replicas(self):
        graph = LaunchGraph()
        p = graph.add(_launch(name="p", blocks=[10.0]))
        child = _launch(name="c", blocks=[1.0], parent=p, count=10)
        child.counters.host_launches = 0
        child.counters.device_launches = 1
        graph.add(child)
        agg = graph.aggregate_counters()
        assert agg.device_launches == 10


class TestUtilization:
    def test_full_utilization_many_blocks(self):
        result, _ = _run(_launch(blocks=[100_000.0] * 130))
        assert result.sm_utilization > 0.9

    def test_conservation_of_work(self):
        blocks = [1234.0, 777.0, 2.0, 90_000.0]
        result, _ = _run(_launch(blocks=blocks))
        assert result.sm_busy_cycles == pytest.approx(sum(blocks), rel=1e-6)
