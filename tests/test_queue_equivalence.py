"""Asynchronous execution equivalence: queue results == BSP results.

The paper-level claim behind the queue backend: because distance/level
updates are *monotone* atomicMin relaxations, barrier-free asynchronous
execution converges to exactly the level-synchronous answer — any
schedule, any interleaving.  These tests pin that down bit-exactly:

* async SSSP/BFS fixpoints equal the serial (= BSP level-synchronous)
  references, elementwise identical — not approximately;
* five differently-seeded nondeterministic schedules (per-chunk worker
  interleavings) produce different request logs but the *same* fixpoint;
* the schedule's task graph is internally consistent: spawn edges are
  topological, live+stale partition the requests, and the queue model
  conserves them (``enqueued == executed + cancelled``);
* the tree walk visits every node exactly once at its true depth.
"""

import numpy as np
import pytest

from repro.apps.asyncq import (
    AsyncBFSApp,
    AsyncSSSPApp,
    AsyncTreeWalkApp,
    async_relax_requests,
)
from repro.errors import GraphError
from repro.gpusim.config import KEPLER_K20
from repro.graphs import citeseer_like
from repro.graphs.generators import grid_graph
from repro.queue import simulate
from repro.trees.generator import generate_tree

SEEDS = (0, 1, 2, 3, 4)


@pytest.fixture(scope="module")
def grid():
    return grid_graph(16, seed=3)


@pytest.fixture(scope="module")
def citeseer():
    return citeseer_like(scale=0.05)


class TestFixpointEquivalence:
    def test_sssp_matches_serial_bitwise(self, grid):
        app = AsyncSSSPApp(grid, source=0)
        assert np.array_equal(app.distances(), app.compute())

    def test_bfs_matches_serial_bitwise(self, grid):
        app = AsyncBFSApp(grid, source=0)
        assert np.array_equal(app.distances(), app.compute())

    def test_sssp_on_power_law_graph(self, citeseer):
        app = AsyncSSSPApp(citeseer, source=0)
        assert np.array_equal(app.distances(), app.compute())

    def test_bfs_unreached_nodes_marked(self):
        # two disconnected 2-cliques: the far pair stays at -1
        g = grid_graph(2)  # 2x2 grid, fully connected
        app = AsyncBFSApp(g, source=0)
        dist = app.distances()
        assert dist[0] == 0
        assert np.all(dist >= 0)  # grid is connected

    def test_source_validated(self, grid):
        with pytest.raises(GraphError):
            AsyncSSSPApp(grid, source=grid.n_nodes)


class TestScheduleNondeterminism:
    def test_five_shuffled_schedules_same_fixpoint(self, grid):
        """Different worker interleavings -> different work, same answer."""
        ref = AsyncSSSPApp(grid, source=0, seed=SEEDS[0]).distances()
        logs = []
        for seed in SEEDS:
            app = AsyncSSSPApp(grid, source=0, seed=seed)
            assert np.array_equal(app.distances(), ref), f"seed {seed}"
            logs.append(app.log)
        # the schedules genuinely differ (request streams are not all equal)
        streams = {tuple(log.node[:64].tolist()) for log in logs}
        assert len(streams) > 1

    def test_five_shuffled_bfs_schedules(self, grid):
        ref = AsyncBFSApp(grid, source=0, seed=SEEDS[0]).distances()
        for seed in SEEDS[1:]:
            app = AsyncBFSApp(grid, source=0, seed=seed)
            assert np.array_equal(app.distances(), ref), f"seed {seed}"

    def test_chunk_size_is_schedule_not_semantics(self, grid):
        ref = AsyncSSSPApp(grid, source=0, chunk=256).distances()
        for chunk in (1, 7, 64, 1024):
            app = AsyncSSSPApp(grid, source=0, chunk=chunk)
            assert np.array_equal(app.distances(), ref), f"chunk {chunk}"


class TestRequestLog:
    def test_spawn_edges_topological(self, grid):
        log = AsyncSSSPApp(grid, source=0, seed=2).log
        ids = np.arange(log.n_requests)
        assert np.all(log.parent < ids)
        assert int(np.count_nonzero(log.parent < 0)) == 1  # the root

    def test_stale_requests_never_spawn(self, grid):
        log = AsyncSSSPApp(grid, source=0, seed=2).log
        spawners = log.parent[log.parent >= 0]
        assert np.all(log.live[spawners])

    def test_queue_model_conserves_requests(self, grid):
        app = AsyncSSSPApp(grid, source=0, seed=1)
        stats = simulate(app.task_graph(), KEPLER_K20)
        assert stats.tasks_enqueued == app.log.n_requests
        assert stats.tasks_executed == app.log.n_live
        assert stats.tasks_cancelled == app.log.n_requests - app.log.n_live

    def test_bfs_inflation_is_work_efficient(self, grid):
        """Unit weights drain in exact level order: every node is
        visited exactly once (inflation 1.0)."""
        app = AsyncBFSApp(grid, source=0)
        reached = int(np.count_nonzero(app.distances() >= 0))
        assert app.log.n_live == reached

    def test_engine_rejects_negative_weights(self, grid):
        with pytest.raises(GraphError):
            async_relax_requests(
                grid, weights=np.full(grid.n_edges, -1.0))


class TestAppRuns:
    def test_queue_run_reports_termination(self, grid):
        run = AsyncBFSApp(grid, source=0).run("queue")
        assert run.meta["termination_overhead"] > 0
        assert run.gpu_time_ms > 0

    def test_bsp_run_pays_a_launch_per_round(self, grid):
        app = AsyncBFSApp(grid, source=0)
        run = app.run("sim")
        serial = app.compute()
        assert run.meta["rounds"] == int(serial.max()) + 1

    def test_queue_beats_bsp_on_high_diameter_bfs(self, grid):
        """The headline effect: tiny frontiers make BSP launch-bound."""
        app = AsyncBFSApp(grid, source=0)
        assert app.run("queue").gpu_time_ms < app.run("sim").gpu_time_ms

    def test_results_identical_across_backends(self, grid):
        app = AsyncSSSPApp(grid, source=0)
        assert np.array_equal(app.run("queue").result,
                              app.run("sim").result)


class TestTreeWalk:
    @pytest.fixture(scope="class")
    def tree(self):
        return generate_tree(depth=7, outdegree=3, sparsity=0.2, seed=11)

    def test_one_task_per_node(self, tree):
        app = AsyncTreeWalkApp(tree)
        tasks = app.task_graph()
        assert tasks.n_tasks == tree.n_nodes
        stats = simulate(tasks, KEPLER_K20)
        assert stats.tasks_executed == tree.n_nodes
        assert stats.tasks_cancelled == 0

    def test_result_is_depths(self, tree):
        assert np.array_equal(AsyncTreeWalkApp(tree).compute(), tree.levels)

    def test_queue_beats_level_synchronous_walk(self, tree):
        app = AsyncTreeWalkApp(tree)
        assert app.run("queue").gpu_time_ms < app.run("sim").gpu_time_ms
