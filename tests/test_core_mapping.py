"""Brute-force verification of the template mapping machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import (
    _sequence_within,
    add_block_mapped_inner,
    add_outer_setup,
    add_partitioned_pairs,
    add_thread_mapped_inner,
)
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.errors import PlanError
from repro.gpusim.config import KEPLER_K20
from repro.gpusim.costmodel import KernelCostBuilder


def make_workload(trips, seed=0):
    trips = np.asarray(trips, dtype=np.int64)
    nnz = int(trips.sum())
    rng = np.random.default_rng(seed)
    return NestedLoopWorkload(
        name="wl",
        trip_counts=trips,
        streams=[AccessStream("g", rng.integers(0, max(nnz, 1), size=nnz) * 4)],
        atomic_targets=rng.integers(0, max(trips.size, 1), size=nnz),
    )


class TestSequenceWithin:
    def test_example(self):
        out = _sequence_within(np.array([5, 5, 2, 5, 2]))
        assert out.tolist() == [0, 1, 0, 2, 1]

    def test_empty(self):
        assert _sequence_within(np.array([], dtype=np.int64)).size == 0

    @given(st.lists(st.integers(0, 5), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_counts_per_group(self, ids):
        ids = np.array(ids, dtype=np.int64)
        seq = _sequence_within(ids)
        for g in set(ids.tolist()):
            got = sorted(seq[ids == g].tolist())
            assert got == list(range(len(got)))


class TestThreadMapped:
    def test_divergence_matches_manual(self):
        wl = make_workload([10, 1, 1, 1])
        b = KernelCostBuilder(KEPLER_K20, "k", block_size=32, n_blocks=1)
        add_thread_mapped_inner(b, wl, np.arange(4), np.arange(4))
        # one warp: issued steps = max trips = 10; active = 13
        eff = b.counters.warp.warp_execution_efficiency
        assert eff == pytest.approx(13 / (10 * 32))

    def test_rejects_duplicate_threads(self):
        wl = make_workload([1, 1])
        b = KernelCostBuilder(KEPLER_K20, "k", block_size=32, n_blocks=1)
        with pytest.raises(PlanError):
            add_thread_mapped_inner(b, wl, np.array([0, 1]), np.array([3, 3]))

    def test_rejects_misaligned(self):
        wl = make_workload([1, 1])
        b = KernelCostBuilder(KEPLER_K20, "k", block_size=32, n_blocks=1)
        with pytest.raises(PlanError):
            add_thread_mapped_inner(b, wl, np.array([0, 1]), np.array([0]))

    def test_empty_selection_is_noop(self):
        wl = make_workload([1, 1])
        b = KernelCostBuilder(KEPLER_K20, "k", block_size=32, n_blocks=1)
        add_thread_mapped_inner(b, wl, np.array([], dtype=np.int64),
                                np.array([], dtype=np.int64))
        assert b.counters.warp.issued_steps == 0

    def test_atomics_accounted(self):
        wl = make_workload([4, 4])
        b = KernelCostBuilder(KEPLER_K20, "k", block_size=32, n_blocks=1)
        add_thread_mapped_inner(b, wl, np.arange(2), np.arange(2))
        assert b.counters.atomic.n_atomics == 8


class TestBlockMapped:
    def test_lane_trips_match_manual(self):
        # one outer iteration of 10 pairs on a 4-thread... use block=64:
        # lane L gets ceil((10 - L)/64) = 1 for L < 10 else 0
        wl = make_workload([10])
        b = KernelCostBuilder(KEPLER_K20, "k", block_size=64, n_blocks=1)
        add_block_mapped_inner(b, wl, np.array([0]), np.array([0]))
        # issued: warp0 -> 1 step; warp1 -> 0 steps; active = 10
        eff = b.counters.warp.warp_execution_efficiency
        assert eff == pytest.approx(10 / 32)

    def test_multiple_outers_same_block_sequential(self):
        wl = make_workload([100, 100])
        b = KernelCostBuilder(KEPLER_K20, "k", block_size=64, n_blocks=1)
        add_block_mapped_inner(b, wl, np.array([0, 1]), np.array([0, 0]))
        # both outers fully processed: active slots = 200 x insts
        assert b.counters.warp.active_slots == pytest.approx(
            200 * wl.inner_insts, rel=0.01)

    def test_rejects_block_out_of_range(self):
        wl = make_workload([5])
        b = KernelCostBuilder(KEPLER_K20, "k", block_size=64, n_blocks=2)
        with pytest.raises(PlanError):
            add_block_mapped_inner(b, wl, np.array([0]), np.array([7]))

    def test_coalesced_stores_skip_global_scatter(self):
        trips = [200]
        rng = np.random.default_rng(1)
        nnz = 200
        wl = NestedLoopWorkload(
            name="wl", trip_counts=np.array(trips),
            streams=[AccessStream("s", rng.integers(0, 10_000, size=nnz) * 4,
                                  "store", 4, staged_in_shared=True)],
        )
        b1 = KernelCostBuilder(KEPLER_K20, "k", block_size=64, n_blocks=1)
        add_block_mapped_inner(b1, wl, np.array([0]), np.array([0]),
                               coalesce_stores=False)
        b2 = KernelCostBuilder(KEPLER_K20, "k", block_size=64, n_blocks=1,
                               shared_mem_per_block=1024)
        add_block_mapped_inner(b2, wl, np.array([0]), np.array([0]),
                               coalesce_stores=True)
        assert (b2.counters.store_traffic.transactions
                < b1.counters.store_traffic.transactions)
        assert b2.counters.shared_accesses > 0


class TestPartitionedPairs:
    def test_even_split_across_blocks(self):
        wl = make_workload([64] * 8)  # 512 pairs
        b = KernelCostBuilder(KEPLER_K20, "k", block_size=64, n_blocks=4)
        add_partitioned_pairs(b, wl, np.arange(8))
        cycles = b.build().costs.block_cycles
        # fair partition: all blocks within 25% of each other
        assert cycles.max() <= cycles.min() * 1.25

    def test_total_pairs_processed(self):
        wl = make_workload([3, 5, 7])
        b = KernelCostBuilder(KEPLER_K20, "k", block_size=64, n_blocks=2)
        add_partitioned_pairs(b, wl, np.arange(3))
        # 15 atomic ops = 15 pairs
        assert b.counters.atomic.n_atomics == 15


class TestOuterSetup:
    def test_counts_coalesced_loads(self):
        wl = make_workload([1] * 64)
        b = KernelCostBuilder(KEPLER_K20, "k", block_size=64, n_blocks=1)
        add_outer_setup(b, wl, 64)
        assert b.counters.load_traffic.requested_bytes == 64 * wl.outer_load_bytes

    def test_indirect_adds_traffic(self):
        wl = make_workload([1] * 64)
        b1 = KernelCostBuilder(KEPLER_K20, "k", block_size=64, n_blocks=1)
        b2 = KernelCostBuilder(KEPLER_K20, "k", block_size=64, n_blocks=1)
        add_outer_setup(b1, wl, 64, indirect=False)
        add_outer_setup(b2, wl, 64, indirect=True)
        assert (b2.counters.load_traffic.transactions
                > b1.counters.load_traffic.transactions)

    def test_outer_stores(self):
        wl = make_workload([1] * 32)
        wl.outer_store_bytes = 8
        b = KernelCostBuilder(KEPLER_K20, "k", block_size=64, n_blocks=1)
        add_outer_setup(b, wl, 32)
        assert b.counters.store_traffic.requested_bytes == 32 * 8
