"""Persistent task-queue backend: model invariants and seam integration.

What the queue subsystem guarantees:

* the event-driven model conserves tasks (``enqueued == executed +
  cancelled``), its makespan bounds decompose sensibly, and termination
  detection is reported as a first-class (nonzero, bounded) overhead;
* launch-graph conversion preserves work: every block of every launch
  becomes exactly one task, host stream order survives as phase gating,
  device launches become spawned tasks;
* the seam stays honest — ``backend_for("queue")`` resolves, templates
  that need launch-wide barriers fall back to BSP execution with the
  exact BSP result, and queue cache identity never collides with BSP
  identity (distinct fingerprints, tagged run keys);
* observability: one ``queue.execute`` span plus the documented
  ``queue.*`` counters per submission.
"""

import numpy as np
import pytest

import repro
from repro import obs
from repro.backends import (
    SimBackend,
    backend_for,
    get_default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.core.registry import resolve
from repro.core.workload import NestedLoopWorkload
from repro.errors import ConfigError, WorkloadError
from repro.gpusim.config import KEPLER_K20
from repro.queue import (
    QueueBackend,
    QueueConfig,
    TaskGraph,
    graph_to_tasks,
    simulate,
    worker_count,
)


@pytest.fixture()
def loop_wl():
    rng = np.random.default_rng(7)
    trips = rng.zipf(1.6, size=300).clip(max=200)
    return NestedLoopWorkload("queue-loop", trips.astype(np.int64))


@pytest.fixture(autouse=True)
def _reset_backend():
    yield
    set_default_backend("sim")


def chain_tasks(n: int, work: float = 50.0) -> TaskGraph:
    """A pure spawn chain: task i spawns task i+1."""
    spawned = np.arange(-1, n - 1, dtype=np.int64)
    return TaskGraph("chain", np.full(n, work), spawned_by=spawned)


class TestModel:
    def test_task_conservation(self):
        g = TaskGraph("mix", np.full(64, 40.0),
                      cancelled=(np.arange(64) % 4 == 0))
        stats = simulate(g, KEPLER_K20)
        assert stats.tasks_enqueued == 64
        assert stats.tasks_executed + stats.tasks_cancelled == 64
        assert stats.tasks_cancelled == 16

    def test_makespan_decomposition(self):
        stats = simulate(chain_tasks(32), KEPLER_K20)
        assert stats.makespan_cycles == pytest.approx(
            stats.last_task_end_cycles + stats.termination_cycles)
        assert stats.termination_cycles > 0

    def test_chain_serializes(self):
        """A spawn chain cannot go faster than its dependency depth."""
        stats = simulate(chain_tasks(64, work=100.0), KEPLER_K20)
        assert stats.last_task_end_cycles >= 64 * 100.0

    def test_independent_tasks_parallelize(self):
        flat = TaskGraph("flat", np.full(512, 400.0))
        chain = chain_tasks(512, work=400.0)
        t_flat = simulate(flat, KEPLER_K20).makespan_cycles
        t_chain = simulate(chain, KEPLER_K20).makespan_cycles
        assert t_flat * 10 < t_chain

    def test_cancelled_tasks_are_cheap(self):
        live = TaskGraph("live", np.full(256, 5000.0))
        dead = TaskGraph("dead", np.full(256, 5000.0),
                         cancelled=np.ones(256, dtype=bool))
        assert (simulate(dead, KEPLER_K20).makespan_cycles * 2
                < simulate(live, KEPLER_K20).makespan_cycles)

    def test_deterministic(self):
        g = chain_tasks(128)
        a = simulate(g, KEPLER_K20)
        b = simulate(g, KEPLER_K20)
        assert a.makespan_cycles == b.makespan_cycles
        assert np.array_equal(a.worker_busy_cycles, b.worker_busy_cycles)

    def test_phase_gating_orders_phases(self):
        """Tasks of phase 1 must start after every phase-0 task ends."""
        n = 32
        g = TaskGraph(
            "phased",
            np.full(2 * n, 300.0),
            phase=np.concatenate([np.zeros(n), np.ones(n)]).astype(np.int64),
            phase_dep=np.concatenate([np.full(n, -1), np.zeros(n)]).astype(
                np.int64),
            phase_tail_cycles=np.zeros(2),
        )
        stats = simulate(g, KEPLER_K20)
        single = TaskGraph("half", np.full(n, 300.0))
        t0 = KEPLER_K20.us_to_cycles(KEPLER_K20.host_launch_overhead_us)
        t_single = simulate(single, KEPLER_K20).last_task_end_cycles - t0
        # two serialized waves cost clearly more than one (net of the
        # persistent-kernel launch both pay once)
        assert stats.last_task_end_cycles - t0 > 1.5 * t_single

    def test_worker_count_positive_and_stable(self):
        w = worker_count(KEPLER_K20, QueueConfig())
        assert w >= KEPLER_K20.sm_count
        assert w == worker_count(KEPLER_K20, QueueConfig())

    def test_max_tasks_guard(self):
        with pytest.raises(WorkloadError):
            simulate(chain_tasks(100), KEPLER_K20, QueueConfig(max_tasks=10))

    def test_no_initial_task_rejected(self):
        # a 2-cycle spawn loop is topologically invalid at build time
        with pytest.raises(WorkloadError):
            TaskGraph("loop", np.ones(2),
                      spawned_by=np.array([1, 0], dtype=np.int64))


class TestTaskGraphValidation:
    def test_spawner_must_precede(self):
        with pytest.raises(WorkloadError):
            TaskGraph("bad", np.ones(2),
                      spawned_by=np.array([-1, 5], dtype=np.int64))

    def test_cancelled_cannot_spawn(self):
        with pytest.raises(WorkloadError):
            TaskGraph(
                "bad", np.ones(2),
                spawned_by=np.array([-1, 0], dtype=np.int64),
                cancelled=np.array([True, False]),
            )

    def test_negative_work_rejected(self):
        with pytest.raises(WorkloadError):
            TaskGraph("bad", np.array([-1.0]))


class TestConversion:
    def _graph_for(self, wl, name="dbuf-global"):
        tmpl = resolve(name)
        plan = tmpl.build(wl, KEPLER_K20)
        return plan.graph if hasattr(plan, "graph") else plan

    def test_blocks_become_tasks(self, loop_wl):
        tmpl = resolve("dbuf-global")
        run = tmpl.run(loop_wl, KEPLER_K20,
                       backend=SimBackend(KEPLER_K20))
        qrun = tmpl.run(loop_wl, KEPLER_K20,
                        backend=QueueBackend(KEPLER_K20))
        total_blocks = sum(
            launch.costs.block_cycles.size * launch.count
            for launch in run.graph.launches)
        assert qrun.result.tasks_enqueued == total_blocks
        assert qrun.result.tasks_executed == total_blocks
        assert qrun.result.n_launches == 1
        assert qrun.result.n_device_launches == 0

    def test_dynamic_parallelism_becomes_spawns(self, loop_wl):
        tmpl = resolve("dpar-opt")
        run = tmpl.run(loop_wl, KEPLER_K20, backend=SimBackend(KEPLER_K20))
        tasks = graph_to_tasks(run.graph, KEPLER_K20)
        # the child launches' blocks are spawned, not initially enqueued
        assert int(np.count_nonzero(tasks.spawned_by >= 0)) > 0
        assert run.result.n_device_launches > 0

    def test_queue_beats_bsp_on_launch_bound_template(self, loop_wl):
        """dpar-naive pays a device launch per outer row; the queue
        model deletes that latency, so it must not be slower."""
        tmpl = resolve("dpar-naive")
        bsp = tmpl.run(loop_wl, KEPLER_K20, backend=SimBackend(KEPLER_K20))
        q = tmpl.run(loop_wl, KEPLER_K20, backend=QueueBackend(KEPLER_K20))
        assert q.result.time_ms < bsp.result.time_ms


class TestSeam:
    def test_resolve_backend(self):
        assert resolve_backend("queue") == "queue"
        assert resolve_backend(None) is None
        with pytest.raises(ConfigError) as err:
            resolve_backend("vulkan")
        assert "known: sim, queue" in str(err.value)

    def test_backend_for_queue(self):
        backend = backend_for(KEPLER_K20, kind="queue")
        assert isinstance(backend, QueueBackend)
        assert backend.capabilities.persistent_queue

    def test_default_backend_roundtrip(self):
        assert get_default_backend() == "sim"
        set_default_backend("queue")
        assert get_default_backend() == "queue"
        assert isinstance(backend_for(KEPLER_K20), QueueBackend)

    def test_queue_rejects_multi_device(self):
        with pytest.raises(ConfigError, match="single-device"):
            backend_for(KEPLER_K20, kind="queue", devices=2)

    def test_run_backend_kwarg(self, loop_wl):
        run = repro.run(loop_wl, "dbuf-global", backend="queue")
        assert run.result.n_launches == 1
        assert run.result.tasks_enqueued > 0

    def test_incompatible_template_falls_back_to_bsp(self, loop_wl):
        """dbuf-shared needs a launch-wide barrier; the queue seam must
        hand it to the BSP simulator and reproduce the BSP result."""
        ref = repro.run(loop_wl, "dbuf-shared")
        via_queue = repro.run(loop_wl, "dbuf-shared", backend="queue")
        assert via_queue.result.time_ms == ref.result.time_ms
        assert via_queue.result.cycles == ref.result.cycles
        assert not hasattr(via_queue.result, "tasks_enqueued")

    def test_explain_reports_backend(self, loop_wl):
        report = repro.explain(loop_wl, backend="queue")
        assert report["backend"] == "queue"
        # the capability filter's reasoning is part of the audit trail
        assert any("queue-compatible" in r for r in report["reasons"])
        assert repro.explain(loop_wl)["backend"] == "sim"

    def test_fingerprints_disjoint_from_bsp(self):
        q = QueueBackend(KEPLER_K20)
        assert q.fingerprint() != SimBackend(KEPLER_K20).fingerprint()
        assert q.fingerprint().startswith("queue[")
        assert q.run_cache_tag == f"queue[{QueueConfig().key()}]"

    def test_queue_config_changes_identity(self):
        a = QueueBackend(KEPLER_K20)
        b = QueueBackend(KEPLER_K20,
                         queue_config=QueueConfig(n_queues=8))
        assert a.fingerprint() != b.fingerprint()
        assert a.run_cache_tag != b.run_cache_tag


class TestObservability:
    def test_span_and_counters(self, loop_wl):
        obs.reset()
        obs.set_enabled(True)
        try:
            repro.run(loop_wl, "dbuf-global", backend="queue")
            summary = obs.summary()
        finally:
            obs.set_enabled(False)
            obs.reset()
        assert "queue.execute" in summary["wall_ms"]
        counters = summary["counters"]
        assert counters["queue.tasks"] > 0
        assert counters["queue.worker_busy_cycles"] > 0
        assert "queue.termination_wait" in counters

    def test_fallback_counter(self, loop_wl):
        obs.reset()
        obs.set_enabled(True)
        try:
            repro.run(loop_wl, "dbuf-shared", backend="queue")
            counters = obs.summary()["counters"]
        finally:
            obs.set_enabled(False)
            obs.reset()
        assert counters.get("queue.fallbacks", 0) == 1
