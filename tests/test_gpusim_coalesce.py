"""Unit + property tests for the coalescing model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.gpusim.coalesce import (
    MemoryTraffic,
    contiguous_transactions,
    segment_transactions,
    transaction_counts,
    transactions_for_flat,
)


class TestSegmentTransactions:
    def test_fully_coalesced_warp(self):
        # 32 consecutive 4-byte words starting at an aligned base: 1 segment
        addr = (np.arange(32) * 4).reshape(1, 32)
        assert segment_transactions(addr).tolist() == [1]

    def test_fully_scattered_warp(self):
        addr = (np.arange(32) * 4096).reshape(1, 32)
        assert segment_transactions(addr).tolist() == [32]

    def test_same_address_broadcast(self):
        addr = np.zeros((1, 32), dtype=np.int64)
        assert segment_transactions(addr).tolist() == [1]

    def test_straddling_unaligned(self):
        # 32 words starting 64 bytes into a segment -> 2 segments
        addr = (64 + np.arange(32) * 4).reshape(1, 32)
        assert segment_transactions(addr).tolist() == [2]

    def test_inactive_lanes_do_not_count(self):
        addr = (np.arange(32) * 4096).reshape(1, 32)
        active = np.zeros((1, 32), dtype=bool)
        active[0, :4] = True
        assert segment_transactions(addr, active).tolist() == [4]

    def test_all_inactive_warp(self):
        addr = np.zeros((1, 32), dtype=np.int64)
        active = np.zeros((1, 32), dtype=bool)
        assert segment_transactions(addr, active).tolist() == [0]

    def test_multiple_warps(self):
        addr = np.vstack([
            np.arange(32) * 4,       # 1 segment
            np.arange(32) * 128,     # 32 segments
        ])
        assert segment_transactions(addr).tolist() == [1, 32]

    def test_rejects_negative_addresses(self):
        with pytest.raises(WorkloadError):
            segment_transactions(np.array([[-4, 0]]))

    def test_rejects_1d(self):
        with pytest.raises(WorkloadError):
            segment_transactions(np.arange(32))

    def test_rejects_mismatched_mask(self):
        with pytest.raises(WorkloadError):
            segment_transactions(np.zeros((1, 32)), np.zeros((2, 32), dtype=bool))

    @given(st.integers(1, 8), st.integers(0, 2**20))
    @settings(max_examples=50, deadline=None)
    def test_bounds(self, n_warps, base):
        rng = np.random.default_rng(base)
        addr = rng.integers(0, 1 << 20, size=(n_warps, 32)) * 4
        tx = segment_transactions(addr)
        assert np.all(tx >= 1)
        assert np.all(tx <= 32)

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_matches_bruteforce(self, word_addrs):
        addr = np.array(word_addrs, dtype=np.int64) * 4
        padded = np.zeros((1, 32), dtype=np.int64)
        padded[0, : len(word_addrs)] = addr
        active = np.zeros((1, 32), dtype=bool)
        active[0, : len(word_addrs)] = True
        expected = len({a // 128 for a in addr.tolist()})
        assert segment_transactions(padded, active)[0] == expected


class TestFlatAndContiguous:
    def test_flat_chunks_into_warps(self):
        addr = np.arange(64) * 4
        tx = transactions_for_flat(addr)
        assert tx.tolist() == [1, 1]

    def test_flat_partial_last_warp(self):
        addr = np.arange(40) * 4
        tx = transactions_for_flat(addr)
        assert tx.shape == (2,)
        assert tx[1] == 1

    def test_flat_empty(self):
        assert transactions_for_flat(np.array([], dtype=np.int64)).size == 0

    def test_contiguous_closed_form_matches_exact(self):
        for n in [1, 5, 31, 32, 33, 100, 257]:
            addr = np.arange(n, dtype=np.int64) * 4
            exact = int(transactions_for_flat(addr).sum())
            closed = int(contiguous_transactions(n).sum())
            assert closed == exact, n

    def test_contiguous_array_input(self):
        out = contiguous_transactions(np.array([0, 32, 64]))
        assert out.tolist() == [0, 1, 2]

    def test_contiguous_rejects_negative(self):
        with pytest.raises(WorkloadError):
            contiguous_transactions(np.array([-1]))


class TestTransactionCounts:
    def test_grouped_matches_per_warp_unique(self):
        # two groups, each accessing 3 distinct segments
        group = np.array([0, 0, 0, 1, 1, 1])
        agg = np.array([0, 0, 0, 1, 1, 1])
        addr = np.array([0, 128, 256, 0, 128, 256])
        out = transaction_counts(agg, group, addr, 2)
        assert out.tolist() == [3, 3]

    def test_duplicate_segments_within_group_collapse(self):
        group = np.zeros(4, dtype=np.int64)
        agg = np.zeros(4, dtype=np.int64)
        addr = np.array([0, 4, 8, 12])
        assert transaction_counts(agg, group, addr, 1).tolist() == [1]

    def test_same_segment_different_groups_count_twice(self):
        group = np.array([0, 1])
        agg = np.array([0, 0])
        addr = np.array([0, 0])
        assert transaction_counts(agg, group, addr, 1).tolist() == [2]

    def test_empty(self):
        out = transaction_counts(
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            3,
        )
        assert out.tolist() == [0, 0, 0]

    def test_rejects_out_of_range_agg(self):
        with pytest.raises(WorkloadError):
            transaction_counts(np.array([5]), np.array([0]), np.array([0]), 2)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(WorkloadError):
            transaction_counts(np.array([0]), np.array([0, 1]), np.array([0]), 1)

    @given(st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_matches_set_semantics(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 200))
        group = rng.integers(0, 10, size=n)
        agg = group % 3
        addr = rng.integers(0, 4096, size=n) * 4
        out = transaction_counts(agg, group, addr, 3)
        expected = np.zeros(3, dtype=np.int64)
        pairs = {(int(g), int(a) // 128) for g, a in zip(group, addr)}
        for g, _ in pairs:
            expected[g % 3] += 1
        assert out.tolist() == expected.tolist()


class TestMemoryTraffic:
    def test_efficiency(self):
        t = MemoryTraffic(requested_bytes=128, transactions=2, segment_bytes=128)
        assert t.efficiency == pytest.approx(0.5)
        assert t.transferred_bytes == 256

    def test_empty_traffic_is_perfect(self):
        assert MemoryTraffic().efficiency == 1.0

    def test_merge(self):
        a = MemoryTraffic(100, 1)
        b = MemoryTraffic(28, 1)
        c = a.merge(b)
        assert c.requested_bytes == 128
        assert c.transactions == 2

    def test_merge_rejects_mixed_segments(self):
        with pytest.raises(WorkloadError):
            MemoryTraffic(8, 1, segment_bytes=128).merge(
                MemoryTraffic(8, 1, segment_bytes=32)
            )

    def test_merge_empty_adopts_segment_size(self):
        merged = MemoryTraffic(segment_bytes=128).merge(
            MemoryTraffic(8, 1, segment_bytes=32)
        )
        assert merged.segment_bytes == 32
