"""Tests for the experiment helper utilities."""

from repro.bench.experiments.common import (
    FIG6_TEMPLATES,
    LB_SWEEP,
    citeseer_for,
    params_for,
    random_graph_for,
    scaled,
    wiki_vote_for,
)
from repro.bench.registry import ExperimentConfig


class TestScaled:
    def test_linear_scaling(self):
        cfg = ExperimentConfig(scale=0.5)
        assert scaled(1000, cfg) == 500

    def test_reference_scale(self):
        cfg = ExperimentConfig(scale=0.15)
        assert scaled(50_000, cfg, reference=0.15) == 50_000

    def test_minimum_floor(self):
        cfg = ExperimentConfig(scale=0.001)
        assert scaled(100, cfg, minimum=50) == 50


class TestDatasetHelpers:
    def test_citeseer_scales(self):
        small = citeseer_for(ExperimentConfig(scale=0.005))
        large = citeseer_for(ExperimentConfig(scale=0.01))
        assert large.n_nodes > small.n_nodes

    def test_wiki_vote_fixed_size(self):
        g = wiki_vote_for(ExperimentConfig(scale=0.005))
        assert g.n_nodes == 7115

    def test_random_graph_scales_nodes(self):
        g = random_graph_for(ExperimentConfig(scale=0.006), (2, 6))
        assert g.n_nodes == 2000  # floor

    def test_params_for(self):
        p = params_for(64, lb_block=128)
        assert p.lb_threshold == 64
        assert p.lb_block == 128


class TestConstants:
    def test_sweep_covers_paper_range(self):
        assert 32 in LB_SWEEP
        assert 1024 in LB_SWEEP

    def test_fig6_omits_dpar_naive(self):
        assert "dpar-naive" not in FIG6_TEMPLATES
        assert "dbuf-shared" in FIG6_TEMPLATES
