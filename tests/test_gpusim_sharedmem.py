"""Unit tests for the shared-memory bank-conflict model."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.gpusim.config import KEPLER_K20
from repro.gpusim.sharedmem import bank_conflict_degree, shared_access_cycles
from repro.gpusim.warps import form_warps


class TestBankConflicts:
    def test_sequential_words_conflict_free(self):
        shape = form_warps(np.arange(32))
        assert bank_conflict_degree(shape).tolist() == [1]

    def test_same_word_broadcast(self):
        shape = form_warps(np.full(32, 5))
        assert bank_conflict_degree(shape).tolist() == [1]

    def test_stride_two_creates_two_way_conflict(self):
        shape = form_warps(np.arange(32) * 2)
        assert bank_conflict_degree(shape).tolist() == [2]

    def test_stride_32_is_worst_case(self):
        shape = form_warps(np.arange(32) * 32)
        assert bank_conflict_degree(shape).tolist() == [32]

    def test_inactive_warp(self):
        shape = form_warps(np.array([], dtype=np.int64))
        assert bank_conflict_degree(shape).size == 0

    def test_partial_warp(self):
        shape = form_warps(np.arange(8) * 32)
        assert bank_conflict_degree(shape).tolist() == [8]

    def test_mixed_broadcast_and_conflict(self):
        # 16 lanes hit word 0, 16 lanes hit words 32,64,... (same bank 0)
        vals = np.concatenate([np.zeros(16, dtype=np.int64),
                               (np.arange(16) + 1) * 32])
        shape = form_warps(vals)
        # bank 0 sees 17 distinct words (0 plus 16 others)
        assert bank_conflict_degree(shape).tolist() == [17]

    def test_rejects_negative_indices(self):
        with pytest.raises(WorkloadError):
            bank_conflict_degree(form_warps(np.array([-1])))

    def test_rejects_bad_banks(self):
        with pytest.raises(WorkloadError):
            bank_conflict_degree(form_warps(np.arange(4)), n_banks=0)


class TestSharedAccessCycles:
    def test_conflict_free_cost(self):
        cycles = shared_access_cycles(form_warps(np.arange(32)), KEPLER_K20)
        assert cycles.tolist() == [KEPLER_K20.shared_mem_cycles]

    def test_cost_scales_with_degree(self):
        cycles = shared_access_cycles(form_warps(np.arange(32) * 2), KEPLER_K20)
        assert cycles.tolist() == [2 * KEPLER_K20.shared_mem_cycles]
