"""Tests for the dataset catalog + RMAT generator."""

import numpy as np
import pytest

from repro.datasets import DATASETS, list_datasets, load, load_file
from repro.errors import DatasetError
from repro.graphs.generators import rmat_graph
from repro.graphs.io import write_dimacs, write_edge_list, write_matrix_market
from repro.graphs.generators import uniform_random_graph


class TestCatalog:
    def test_paper_datasets_present(self):
        assert {"citeseer", "wiki-vote", "uniform-random"} <= set(DATASETS)

    def test_load_citeseer(self):
        g = load("citeseer", scale=0.01, seed=1)
        assert g.n_nodes >= 1000
        assert g.name == "citeseer-like"

    def test_load_forwards_kwargs(self):
        g = load("uniform-random", n_nodes=500, degree_range=(1, 4))
        assert g.n_nodes == 500

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            load("orkut")

    def test_list_entries_have_provenance(self):
        for info in list_datasets():
            assert info.source
            assert info.paper_stats
            assert info.used_by


class TestLoadFile:
    def test_dimacs(self, tmp_path):
        g = uniform_random_graph(30, (1, 3), seed=1).with_unit_weights()
        path = tmp_path / "g.gr"
        write_dimacs(g, path)
        assert load_file(path).n_nodes == 30

    def test_matrix_market(self, tmp_path):
        g = uniform_random_graph(30, (1, 3), seed=2).with_unit_weights()
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        assert load_file(path).n_nodes == 30

    def test_edge_list_fallback(self, tmp_path):
        g = uniform_random_graph(30, (1, 3), seed=3)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert load_file(path, n_nodes=30).n_edges == g.n_edges

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="does not exist"):
            load_file(tmp_path / "nope.gr")


class TestRmat:
    def test_size(self):
        g = rmat_graph(scale=10, edge_factor=4, seed=1)
        assert g.n_nodes == 1024
        assert g.n_edges == 4096

    def test_heavy_tail(self):
        g = rmat_graph(scale=13, edge_factor=16, seed=2)
        deg = g.out_degrees
        assert deg.max() > 20 * deg.mean()

    def test_no_self_loops(self):
        from repro.graphs.csr import expand_rows

        g = rmat_graph(scale=9, edge_factor=8, seed=3)
        rows = expand_rows(g.row_offsets)
        assert not np.any(rows == g.col_indices)

    def test_determinism(self):
        a = rmat_graph(scale=8, seed=4)
        b = rmat_graph(scale=8, seed=4)
        assert np.array_equal(a.col_indices, b.col_indices)

    def test_validation(self):
        with pytest.raises(DatasetError):
            rmat_graph(scale=0)
        with pytest.raises(DatasetError):
            rmat_graph(scale=5, edge_factor=0)
        with pytest.raises(DatasetError):
            rmat_graph(scale=5, probabilities=(0.5, 0.5, 0.5, 0.5))

    def test_uniform_probabilities_balance_degrees(self):
        g = rmat_graph(scale=12, edge_factor=8,
                       probabilities=(0.25, 0.25, 0.25, 0.25), seed=5)
        deg = g.out_degrees
        # Erdos-Renyi-like: no extreme hubs
        assert deg.max() < 8 * max(deg.mean(), 1)
