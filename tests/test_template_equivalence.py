"""Property test: template choice never changes application results.

Hypothesis generates random small graphs; SSSP and CC are run under a
baseline and a load-balancing template, and the functional fixpoints must
be identical — the library's central semantic guarantee, checked over
arbitrary graph shapes rather than fixed seeds.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import CCApp, SpMVApp, SSSPApp
from repro.core import TemplateParams
from repro.gpusim import KEPLER_K20
from repro.graphs import CSRGraph

PARAMS = TemplateParams(lb_threshold=8)


@st.composite
def random_csr(draw):
    n = draw(st.integers(2, 60))
    n_edges = draw(st.integers(0, 150))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=n_edges)
    dst = rng.integers(0, n, size=n_edges)
    keep = src != dst
    weights = rng.integers(1, 9, size=int(keep.sum())).astype(np.float64)
    return CSRGraph.from_edges(n, src[keep], dst[keep], weights)


class TestTemplateEquivalence:
    @given(random_csr())
    @settings(max_examples=15, deadline=None)
    def test_sssp_fixpoint_template_invariant(self, graph):
        app = SSSPApp(graph, source=0)
        base = app.run("baseline", KEPLER_K20, PARAMS).result
        dbuf = app.run("dbuf-shared", KEPLER_K20, PARAMS).result
        np.testing.assert_array_equal(base, dbuf)

    @given(random_csr())
    @settings(max_examples=15, deadline=None)
    def test_cc_labels_template_invariant(self, graph):
        app = CCApp(graph)
        base = app.run("baseline", KEPLER_K20, PARAMS).result
        dq = app.run("dual-queue", KEPLER_K20, PARAMS).result
        np.testing.assert_array_equal(base, dq)

    @given(random_csr())
    @settings(max_examples=15, deadline=None)
    def test_spmv_product_template_invariant(self, graph):
        app = SpMVApp(graph, seed=0)
        base = app.run("baseline", KEPLER_K20, PARAMS).result
        dpar = app.run("dpar-opt", KEPLER_K20, PARAMS).result
        np.testing.assert_array_equal(base, dpar)
        # and both match scipy
        np.testing.assert_allclose(base, graph.to_scipy() @ app.x, rtol=1e-12)
