"""Tests for the recursive applications: tree traversals + recursive BFS."""

import numpy as np
import pytest

from repro.apps import (
    RecursiveBFSApp,
    TreeDescendantsApp,
    TreeHeightsApp,
    unordered_bfs_visits,
)
from repro.core import TemplateParams
from repro.cpu.reference import bfs_serial
from repro.cpu.trees import descendants_recursive_py, heights_recursive_py
from repro.errors import PlanError, WorkloadError
from repro.graphs import uniform_random_graph
from repro.trees import generate_tree


@pytest.fixture(scope="module")
def tree():
    return generate_tree(depth=4, outdegree=12, sparsity=0.0)


@pytest.fixture(scope="module")
def graph():
    return uniform_random_graph(3000, (4, 16), seed=7)


class TestTreeApps:
    def test_descendants_result_matches_recursive_oracle(self, tree):
        run = TreeDescendantsApp(tree).run("flat")
        np.testing.assert_array_equal(run.result, descendants_recursive_py(tree))

    def test_heights_result_matches_recursive_oracle(self, tree):
        run = TreeHeightsApp(tree).run("rec-hier")
        np.testing.assert_array_equal(run.result, heights_recursive_py(tree))

    def test_results_template_invariant(self, tree):
        app = TreeDescendantsApp(tree)
        results = [app.run(t).result for t in ("flat", "rec-naive", "rec-hier")]
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])

    def test_unknown_template_rejected(self, tree):
        with pytest.raises(PlanError):
            TreeDescendantsApp(tree).run("rec-magic")

    def test_rec_naive_much_slower_than_hier(self, tree):
        app = TreeDescendantsApp(tree)
        naive = app.run("rec-naive")
        hier = app.run("rec-hier")
        assert naive.gpu_time_ms > 2 * hier.gpu_time_ms

    def test_heights_cost_slightly_above_descendants(self, tree):
        d = TreeDescendantsApp(tree).cpu_baseline()
        h = TreeHeightsApp(tree).cpu_baseline()
        assert h >= d


class TestUnorderedBFS:
    def test_fixpoint_matches_level_synchronous(self, graph):
        forest, levels = unordered_bfs_visits(graph, 0)
        np.testing.assert_array_equal(levels, bfs_serial(graph, 0).result)

    def test_visits_at_least_reached_nodes(self, graph):
        forest, levels = unordered_bfs_visits(graph, 0)
        assert forest.n_visits >= np.count_nonzero(levels >= 0)

    def test_inflation_at_least_one(self, graph):
        forest, levels = unordered_bfs_visits(graph, 0)
        assert forest.inflation(int(np.count_nonzero(levels >= 0))) >= 1.0

    def test_chunk_one_is_serial_dfs(self):
        g = uniform_random_graph(200, (2, 6), seed=8)
        forest, levels = unordered_bfs_visits(g, 0, chunk=1)
        np.testing.assert_array_equal(levels, bfs_serial(g, 0).result)

    def test_parents_precede_children(self, graph):
        forest, _ = unordered_bfs_visits(graph, 0)
        valid = forest.parent >= 0
        assert np.all(forest.parent[valid] < np.flatnonzero(valid))

    def test_visit_levels_bound_fixpoint(self, graph):
        # Within one parallel chunk two stale readers may visit a node with
        # equal levels, so per-visit monotonicity is NOT guaranteed; what
        # must hold is that every visit's level is >= the fixpoint and the
        # minimum visit level per node IS the fixpoint.
        forest, levels = unordered_bfs_visits(graph, 0)
        assert np.all(forest.level >= levels[forest.node])
        best = np.full(graph.n_nodes, np.iinfo(np.int64).max)
        np.minimum.at(best, forest.node, forest.level)
        reached = levels >= 0
        np.testing.assert_array_equal(best[reached], levels[reached])

    def test_validation(self, graph):
        with pytest.raises(WorkloadError):
            unordered_bfs_visits(graph, 0, chunk=0)


class TestRecursiveBFSApp:
    @pytest.fixture(scope="class")
    def app(self, graph):
        return RecursiveBFSApp(graph, source=0)

    def test_result_matches_flat(self, app, graph):
        np.testing.assert_array_equal(
            app.compute(), bfs_serial(graph, 0).result
        )

    def test_both_variants_are_slowdowns(self, app):
        naive = app.run("rec-naive")
        hier = app.run("rec-hier")
        # Fig. 9: recursive GPU variants lose to recursive serial CPU
        assert naive.speedup < 1.0
        assert hier.speedup < 1.0

    def test_streams_help_naive(self, app):
        plain = app.run("rec-naive")
        streamed = app.run("rec-naive", params=TemplateParams(streams_per_block=2))
        assert streamed.gpu_time_ms < plain.gpu_time_ms

    def test_hier_beats_naive_without_streams(self, app):
        naive = app.run("rec-naive")
        hier = app.run("rec-hier")
        assert hier.gpu_time_ms < naive.gpu_time_ms

    def test_unknown_variant(self, app):
        with pytest.raises(WorkloadError):
            app.run("rec-flat")

    def test_meta_reports_visits(self, app):
        run = app.run("rec-hier")
        assert run.meta["visits"] == app.forest.n_visits
        assert run.meta["inflation"] >= 1.0
