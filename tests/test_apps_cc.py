"""Tests for the bonus connected-components application."""

import networkx as nx
import numpy as np
import pytest

from repro.apps import CCApp, cc_serial
from repro.core import TemplateParams
from repro.errors import GraphError
from repro.gpusim import KEPLER_K20
from repro.graphs import CSRGraph, citeseer_like, uniform_random_graph


def components_from_labels(labels):
    """Group node ids by label for order-independent comparison."""
    groups = {}
    for node, lbl in enumerate(labels.tolist()):
        groups.setdefault(lbl, set()).add(node)
    return sorted(map(frozenset, groups.values()), key=min)


class TestCCSerial:
    def test_matches_networkx_weak_components(self):
        g = uniform_random_graph(300, (0, 3), seed=21)
        run = cc_serial(g)
        expected = list(nx.weakly_connected_components(g.to_networkx()))
        expected = sorted(map(frozenset, expected), key=min)
        assert components_from_labels(run.result) == expected

    def test_isolated_nodes_keep_own_label(self):
        g = CSRGraph.from_edges(4, np.array([0]), np.array([1]))
        labels = cc_serial(g).result
        assert labels[2] == 2
        assert labels[3] == 3
        assert labels[0] == labels[1] == 0

    def test_label_is_component_minimum(self):
        g = CSRGraph.from_edges(5, np.array([4, 3]), np.array([3, 2]))
        labels = cc_serial(g).result
        assert labels[4] == labels[3] == labels[2] == 2

    def test_fully_connected_single_label(self):
        n = 50
        src = np.arange(n - 1)
        dst = np.arange(1, n)
        g = CSRGraph.from_edges(n, src, dst)
        labels = cc_serial(g).result
        assert np.all(labels == 0)


class TestCCApp:
    @pytest.fixture(scope="class")
    def graph(self):
        return citeseer_like(scale=0.005, seed=22)

    def test_result_matches_serial(self, graph):
        app = CCApp(graph)
        run = app.run("baseline", KEPLER_K20)
        np.testing.assert_array_equal(run.result, cc_serial(graph).result)

    def test_templates_agree(self, graph):
        app = CCApp(graph)
        a = app.run("baseline", KEPLER_K20).result
        b = app.run("dbuf-shared", KEPLER_K20,
                    TemplateParams(lb_threshold=32)).result
        np.testing.assert_array_equal(a, b)

    def test_load_balancing_helps(self, graph):
        app = CCApp(graph)
        base = app.run("baseline", KEPLER_K20)
        dbuf = app.run("dbuf-global", KEPLER_K20, TemplateParams(lb_threshold=32))
        assert dbuf.gpu_time_ms < base.gpu_time_ms

    def test_meta_reports_components(self, graph):
        run = CCApp(graph).run("baseline", KEPLER_K20)
        assert run.meta["components"] >= 1
        assert run.meta["rounds"] >= 1

    def test_empty_graph_rejected(self):
        empty = CSRGraph(np.array([0]), np.array([], dtype=np.int64))
        with pytest.raises(GraphError):
            CCApp(empty)
