"""The two-level plan pipeline: analysis artifacts, specialize-stage
equivalence, disk-backed cold-vs-warm runs for every template, fingerprint
memoization and the autotuner's shared-analysis reporting."""

import os

import numpy as np
import pytest

import repro
from repro.core import artifactcache
from repro.core.analysis import (
    analysis_stats,
    clear_analysis_cache,
    get_analysis,
    get_tree_analysis,
)
from repro.core.artifactcache import configure_artifact_cache
from repro.core.autotune import autotune
from repro.core.dual_queue import split_by_threshold
from repro.core.params import TemplateParams
from repro.core.plancache import default_cache
from repro.core.recursive import RecursiveTreeWorkload
from repro.core.registry import ALL_TEMPLATES, resolve
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.gpusim.config import KEPLER_K20, KEPLER_K40, DeviceConfig
from repro.trees.generator import generate_tree


@pytest.fixture(autouse=True)
def isolated_caches():
    """Tests control the disk cache explicitly and never leak state."""
    saved = artifactcache._cache
    saved_env = os.environ.get(artifactcache.ENV_VAR)
    artifactcache._cache = None
    os.environ.pop(artifactcache.ENV_VAR, None)
    default_cache().clear()
    clear_analysis_cache(reset_stats=True)
    yield
    artifactcache._cache = saved
    if saved_env is None:
        os.environ.pop(artifactcache.ENV_VAR, None)
    else:
        os.environ[artifactcache.ENV_VAR] = saved_env
    default_cache().clear()
    clear_analysis_cache(reset_stats=True)


def make_workload(seed=0, outer=900, name=None):
    rng = np.random.default_rng(seed)
    trips = rng.zipf(1.7, size=outer).clip(max=120).astype(np.int64)
    nnz = int(trips.sum())
    return NestedLoopWorkload(
        name=name or f"tl-{seed}", trip_counts=trips,
        streams=[
            AccessStream("x", rng.integers(0, nnz, size=nnz) * 4),
            AccessStream("y", rng.integers(0, nnz, size=nnz) * 4,
                         kind="store"),
        ],
    )


def make_tree(seed=0):
    return RecursiveTreeWorkload(
        generate_tree(depth=5, outdegree=3, seed=seed), "descendants")


def workload_for(kind, seed=3):
    return make_workload(seed) if kind == "nested-loop" else make_tree(seed)


class TestWorkloadAnalysis:
    def test_partition_matches_split_by_threshold(self):
        workload = make_workload(seed=5)
        analysis = get_analysis(workload)
        for threshold in (0, 1, 2, 7, 32, 1000):
            small, large = analysis.partition(threshold)
            ref_small, ref_large = split_by_threshold(
                workload.trip_counts, threshold)
            np.testing.assert_array_equal(small, ref_small)
            np.testing.assert_array_equal(large, ref_large)

    def test_partition_is_memoized(self):
        analysis = get_analysis(make_workload(seed=6))
        assert analysis.partition(4)[0] is analysis.partition(4)[0]

    def test_histogram_and_order(self):
        workload = make_workload(seed=7)
        analysis = get_analysis(workload)
        assert analysis.n_pairs == int(workload.trip_counts.sum())
        assert (np.diff(analysis.sorted_trips) >= 0).all()
        np.testing.assert_array_equal(
            np.repeat(analysis.trip_values, analysis.trip_freqs),
            analysis.sorted_trips)

    def test_stream_segments_match_addresses(self):
        workload = make_workload(seed=8)
        analysis = get_analysis(workload)
        for si, stream in enumerate(workload.streams):
            np.testing.assert_array_equal(
                analysis.stream_segments(si), stream.addresses // 128)

    def test_analysis_cached_per_fingerprint(self):
        workload = make_workload(seed=9)
        first = get_analysis(workload)
        assert get_analysis(workload) is first
        stats = analysis_stats()
        assert stats["hits"] >= 1
        # same content, fresh object -> same fingerprint -> same artifact
        assert get_analysis(make_workload(seed=9)) is first

    def test_tree_analysis_structure(self):
        tree_wl = make_tree(seed=2)
        analysis = get_tree_analysis(tree_wl)
        tree = tree_wl.tree
        np.testing.assert_array_equal(analysis.degrees, tree.out_degrees)
        assert analysis.ancestor_counts.sum() == analysis.hop_nodes.size
        assert 0 in analysis.needs_launch


class TestFingerprintMemoization:
    def test_fingerprint_computed_once(self):
        workload = make_workload(seed=10)
        assert workload.fingerprint() is workload.fingerprint()

    def test_invalidate_fingerprint_recomputes(self):
        workload = make_workload(seed=11)
        stale = workload.fingerprint()
        # nnz-conserving edit: streams stay valid, identity must not
        workload.trip_counts = workload.trip_counts.copy()
        src = int(np.flatnonzero(workload.trip_counts > 0)[0])
        dst = src + 1
        workload.trip_counts[src] -= 1
        workload.trip_counts[dst] += 1
        assert workload.fingerprint() == stale  # memo hides the edit
        workload.invalidate_fingerprint()
        assert workload.fingerprint() != stale

    def test_tree_invalidate_fingerprint(self):
        tree_wl = make_tree(seed=3)
        first = tree_wl.fingerprint()
        tree_wl.invalidate_fingerprint()
        assert tree_wl.fingerprint() == first  # same content, same print


class TestDeviceFingerprint:
    def test_equal_configs_share_fingerprint(self):
        # a field-for-field reconstruction, as another process would make
        rebuilt = DeviceConfig(**{
            f: getattr(KEPLER_K20, f)
            for f in KEPLER_K20.__dataclass_fields__
        })
        assert rebuilt is not KEPLER_K20
        assert rebuilt.fingerprint() == KEPLER_K20.fingerprint()

    def test_different_configs_differ(self):
        assert KEPLER_K20.fingerprint() != KEPLER_K40.fingerprint()

    def test_fingerprint_is_memoized(self):
        assert KEPLER_K20.fingerprint() is KEPLER_K20.fingerprint()


@pytest.mark.parametrize("name", sorted(ALL_TEMPLATES))
class TestColdWarmEquivalence:
    def test_disk_warm_run_matches_cold(self, name, tmp_path):
        """Every template must produce identical results when its plan is
        deserialized from the disk cache in a 'fresh' process (simulated
        by clearing the in-memory caches)."""
        kind = ALL_TEMPLATES[name][0]
        workload = workload_for(kind)
        cache = configure_artifact_cache(tmp_path)
        template = resolve(name, kind=kind)
        cold = template.run(workload, KEPLER_K20)
        assert cache.snapshot()["writes"] >= 1

        default_cache().clear()
        clear_analysis_cache()
        warm = template.run(workload, KEPLER_K20)
        assert cache.stats["plan"]["hits"] == 1
        assert warm.time_ms == cold.time_ms
        assert warm.metrics == cold.metrics
        assert set(warm.schedule) == set(cold.schedule)
        for phase in cold.schedule:
            np.testing.assert_array_equal(
                warm.schedule[phase], cold.schedule[phase])

    def test_corrupt_disk_artifacts_degrade_to_cold_build(
            self, name, tmp_path):
        """Garbling every cached entry must never crash a warm run — it
        degrades to a cold build with identical results."""
        kind = ALL_TEMPLATES[name][0]
        workload = workload_for(kind, seed=4)
        cache = configure_artifact_cache(tmp_path)
        template = resolve(name, kind=kind)
        cold = template.run(workload, KEPLER_K20)

        for entry in tmp_path.rglob("*.pkl"):
            entry.write_bytes(b"\x00corrupt")
        default_cache().clear()
        clear_analysis_cache()
        recovered = template.run(workload, KEPLER_K20)
        assert cache.snapshot()["corrupt"] >= 1
        assert recovered.time_ms == cold.time_ms
        assert recovered.metrics == cold.metrics


class TestSpecializeStage:
    def test_build_equals_specialize_with_fresh_analysis(self):
        """build() is exactly specialize(analysis): a sweep point computed
        through the cached artifact matches a from-scratch analysis."""
        workload = make_workload(seed=12)
        template = resolve("dual-queue", kind="nested-loop")
        params = TemplateParams(lb_threshold=8)
        _, cached_schedule = template.build(workload, KEPLER_K20, params)
        from repro.core.analysis import WorkloadAnalysis

        _, fresh_schedule = template.specialize(
            workload, WorkloadAnalysis.from_workload(workload),
            KEPLER_K20, params)
        assert set(cached_schedule) == set(fresh_schedule)
        for phase in fresh_schedule:
            np.testing.assert_array_equal(
                cached_schedule[phase], fresh_schedule[phase])
        cold = repro.run(workload, "dual-queue", params=params)
        default_cache().clear()
        warm = repro.run(workload, "dual-queue", params=params)
        assert warm.time_ms == cold.time_ms

    def test_sweep_hits_analysis_cache_n_minus_1_times(self):
        """The tentpole contract: N parameter points, 1 analysis miss."""
        workload = make_workload(seed=13)
        template = resolve("dual-queue", kind="nested-loop")
        before = analysis_stats()
        for threshold in (1, 2, 4, 8, 16):
            template.build(workload, KEPLER_K20,
                           TemplateParams(lb_threshold=threshold))
        after = analysis_stats()
        assert after["misses"] - before["misses"] == 1
        assert after["hits"] - before["hits"] == 4


class TestAutotuneAnalysisReuse:
    def test_tuning_report_shows_shared_analysis(self):
        workload = make_workload(seed=14, outer=400)
        winner = autotune(
            workload, KEPLER_K20,
            templates=("dual-queue", "dbuf-global"),
            thresholds=(2, 8),
        )
        report = winner.tuning_report
        assert report["candidates"] == 4
        # one miss to compute the artifact, every candidate build a hit
        assert report["analysis_cache"]["misses"] == 1
        assert report["analysis_cache"]["hits"] >= report["candidates"]
