"""Disk artifact cache: round trips, atomic writes, corruption tolerance,
repr-stable keying and the process-wide configure/get plumbing."""

import os
import pickle

import numpy as np
import pytest

from repro.core import artifactcache
from repro.core.artifactcache import (
    ArtifactCache,
    TIERS,
    configure_artifact_cache,
    get_artifact_cache,
)
from repro.errors import ConfigError


@pytest.fixture(autouse=True)
def isolated_cache_state():
    """Each test starts unconfigured and leaks neither global nor env."""
    saved = artifactcache._cache
    saved_env = os.environ.get(artifactcache.ENV_VAR)
    artifactcache._cache = False
    os.environ.pop(artifactcache.ENV_VAR, None)
    yield
    artifactcache._cache = saved
    if saved_env is None:
        os.environ.pop(artifactcache.ENV_VAR, None)
    else:
        os.environ[artifactcache.ENV_VAR] = saved_env


class TestRoundTrip:
    def test_put_get_every_tier(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i, tier in enumerate(TIERS):
            key = ("wl-fp", tier, i)
            value = {"tier": tier, "array": np.arange(4) * i}
            assert cache.get(tier, key) is None  # cold
            cache.put(tier, key, value)
            got = cache.get(tier, key)
            assert got["tier"] == tier
            np.testing.assert_array_equal(got["array"], value["array"])
        assert cache.stats["plan"] == {
            "hits": 1, "misses": 1, "writes": 1, "corrupt": 0,
            "evictions": 0}

    def test_distinct_keys_do_not_collide(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("plan", ("a", 1), "first")
        cache.put("plan", ("a", 2), "second")
        assert cache.get("plan", ("a", 1)) == "first"
        assert cache.get("plan", ("a", 2)) == "second"

    def test_key_paths_are_repr_stable(self, tmp_path):
        """Equal keys built independently (as two processes would) map to
        the same entry file — the cross-process sharing contract."""
        cache = ArtifactCache(tmp_path)
        key_a = ("fp-" + "x" * 3, "dual-queue", (("block_size", 128),))
        key_b = ("fp-xxx", "dual-queue", (("block_size", 2 ** 7),))
        assert cache._path("plan", key_a) == cache._path("plan", key_b)

    def test_unknown_tier_raises(self, tmp_path):
        with pytest.raises(ConfigError, match="unknown cache tier"):
            ArtifactCache(tmp_path).get("plans", "k")


class TestRobustness:
    def test_corrupted_entry_degrades_to_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("run", "key", [1, 2, 3])
        (entry,) = list((tmp_path / "run").glob("*.pkl"))
        entry.write_bytes(b"\x80garbage")
        assert cache.get("run", "key") is None
        assert cache.stats["run"]["corrupt"] == 1
        assert cache.stats["run"]["misses"] == 1

    def test_truncated_entry_degrades_to_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("run", "key", list(range(1000)))
        (entry,) = list((tmp_path / "run").glob("*.pkl"))
        entry.write_bytes(entry.read_bytes()[:10])
        assert cache.get("run", "key") is None
        assert cache.stats["run"]["corrupt"] == 1

    def test_rewrite_after_corruption_recovers(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("plan", "key", "good")
        (entry,) = list((tmp_path / "plan").glob("*.pkl"))
        entry.write_bytes(b"")
        assert cache.get("plan", "key") is None
        cache.put("plan", "key", "good again")
        assert cache.get("plan", "key") == "good again"

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(5):
            cache.put("analysis", i, np.zeros(16))
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_unwritable_directory_degrades_silently(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file where the cache dir should go")
        cache = ArtifactCache(target)
        cache.put("plan", "k", "v")  # must not raise
        assert cache.stats["plan"]["writes"] == 0
        assert cache.get("plan", "k") is None

    def test_alien_pickle_is_served_as_stored(self, tmp_path):
        """Entries are plain pickles; whatever loads cleanly is returned
        (version skew is handled by the format-version key prefix)."""
        cache = ArtifactCache(tmp_path)
        path = cache._path("plan", "k")
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"other": "schema"}))
        assert cache.get("plan", "k") == {"other": "schema"}


class TestSnapshot:
    def test_snapshot_totals_sum_tiers(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("plan", "a", 1)
        cache.get("plan", "a")
        cache.get("run", "nope")
        snap = cache.snapshot()
        assert snap["cache_dir"] == str(tmp_path)
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["writes"] == 1
        assert snap["tiers"]["plan"]["hits"] == 1
        assert snap["tiers"]["run"]["misses"] == 1


class TestSizeCap:
    def _filler(self, n=800):
        return b"x" * n

    def test_lru_eviction_keeps_newest(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=5000)
        for i in range(12):
            cache.put("plan", ("k", i), self._filler())
        assert cache.stats["plan"]["evictions"] > 0
        # newest entries survive, oldest are gone
        assert cache.get("plan", ("k", 11)) is not None
        assert cache.get("plan", ("k", 0)) is None
        total = sum(p.stat().st_size for p in tmp_path.rglob("*.pkl"))
        assert total <= 5000

    def test_hit_refreshes_recency(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=5000)
        cache.put("plan", "hot", self._filler())
        for i in range(3):
            cache.put("plan", ("cold", i), self._filler())
            os.utime(cache._path("plan", ("cold", i)),
                     (i + 1e9, i + 1e9))  # force strict mtime order
            cache.get("plan", "hot")  # keeps "hot" most recent
        for i in range(4):
            cache.put("plan", ("more", i), self._filler())
        assert cache.get("plan", "hot") is not None

    def test_eviction_crosses_tiers(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=3000)
        cache.put("analysis", "old", self._filler())
        os.utime(cache._path("analysis", "old"), (1e9, 1e9))
        for i in range(4):
            cache.put("run", ("r", i), self._filler())
        assert cache.get("analysis", "old") is None
        assert cache.stats["analysis"]["evictions"] == 1

    def test_zero_means_unbounded(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=0)
        for i in range(20):
            cache.put("plan", ("k", i), self._filler())
        assert cache.snapshot()["evictions"] == 0
        assert all(cache.get("plan", ("k", i)) is not None
                   for i in range(20))

    def test_env_var_sets_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(artifactcache.SIZE_ENV_VAR, "12345")
        assert ArtifactCache(tmp_path).max_bytes == 12345
        monkeypatch.setenv(artifactcache.SIZE_ENV_VAR, "not-a-number")
        assert ArtifactCache(tmp_path).max_bytes == \
            artifactcache.DEFAULT_MAX_BYTES

    def test_evicted_read_degrades_to_miss_then_rebuilds(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=2000)
        cache.put("plan", "a", self._filler())
        os.utime(cache._path("plan", "a"), (1e9, 1e9))
        for i in range(3):
            cache.put("plan", ("b", i), self._filler())
        assert cache.get("plan", "a") is None  # miss, not an error
        cache.put("plan", "a", "rebuilt")
        assert cache.get("plan", "a") == "rebuilt"

    def test_snapshot_reports_cap(self, tmp_path):
        snap = ArtifactCache(tmp_path, max_bytes=4096).snapshot()
        assert snap["max_bytes"] == 4096
        assert snap["evictions"] == 0


class TestConfigure:
    def test_configure_sets_global_and_env(self, tmp_path):
        cache = configure_artifact_cache(tmp_path)
        assert get_artifact_cache() is cache
        assert os.environ[artifactcache.ENV_VAR] == str(tmp_path)

    def test_configure_none_disables_and_clears_env(self, tmp_path):
        configure_artifact_cache(tmp_path)
        assert configure_artifact_cache(None) is None
        assert get_artifact_cache() is None
        assert artifactcache.ENV_VAR not in os.environ

    def test_unconfigured_process_adopts_env(self, tmp_path):
        """A pool worker never calls configure; it must pick up the dir
        its parent exported."""
        os.environ[artifactcache.ENV_VAR] = str(tmp_path)
        cache = get_artifact_cache()
        assert cache is not None
        assert cache.cache_dir == tmp_path

    def test_unconfigured_without_env_is_disabled(self):
        assert get_artifact_cache() is None
