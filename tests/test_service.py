"""Tests for the serving layer: admission, batching, routing, metrics,
and the synchronous handle (fault injection lives in
``test_service_faults.py``)."""

import asyncio
import concurrent.futures
import time

import numpy as np
import pytest

import repro
from repro.core.params import TemplateParams
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.errors import ServiceError, WorkloadError
from repro.service import (
    MicroBatcher,
    PriorityClassQueue,
    Request,
    ServiceConfig,
    ServiceHandle,
    TemplateService,
    execute_batch,
    percentile,
    percentiles,
    workload_cost,
    workload_kind,
)
from repro.trees.generator import generate_tree
from repro.core.recursive import RecursiveTreeWorkload


def make_workload(name="svc-wl", outer=1500, seed=0):
    rng = np.random.default_rng(seed)
    trips = rng.zipf(1.8, size=outer).clip(max=200).astype(np.int64)
    nnz = int(trips.sum())
    return NestedLoopWorkload(
        name=name, trip_counts=trips,
        streams=[AccessStream("x", rng.integers(0, nnz, size=nnz) * 4)],
    )


@pytest.fixture(scope="module")
def workload():
    return make_workload()


@pytest.fixture(scope="module")
def tree_workload():
    return RecursiveTreeWorkload(generate_tree(depth=5, outdegree=3, seed=1),
                                 "descendants")


def run_service(scenario, config=None, **service_kwargs):
    """Run an async scenario against a started service, then stop it."""
    async def driver():
        service = TemplateService(config, **service_kwargs)
        await service.start()
        try:
            return await scenario(service)
        finally:
            await service.stop()
    return asyncio.run(driver())


class TestRequestModel:
    def test_workload_kind_and_cost(self, workload, tree_workload):
        assert workload_kind(workload) == "nested-loop"
        assert workload_kind(tree_workload) == "tree"
        assert workload_cost(workload) == workload.n_pairs
        assert workload_cost(tree_workload) == tree_workload.tree.n_nodes
        with pytest.raises(WorkloadError):
            workload_kind(object())

    def test_batch_key_is_content_addressed(self, workload):
        twin = make_workload()  # same content, different object
        r1 = Request(template="dbuf-global", workload=workload)
        r2 = Request(template="dbuf-global", workload=twin)
        assert r1.batch_key() == r2.batch_key()

    def test_batch_key_distinguishes_inputs(self, workload):
        base = Request(template="dbuf-global", workload=workload)
        assert base.batch_key() != Request(
            template="dual-queue", workload=workload).batch_key()
        assert base.batch_key() != Request(
            template="dbuf-global", workload=workload,
            engine="exact").batch_key()
        assert base.batch_key() != Request(
            template="dbuf-global", workload=workload,
            params=TemplateParams(lb_threshold=64)).batch_key()
        assert base.batch_key() != Request(
            template="dbuf-global", workload=make_workload(seed=7)
        ).batch_key()

    def test_invalid_template_and_engine_fail_eagerly(self, workload):
        with pytest.raises(repro.PlanError):
            Request(template="flat", workload=workload)
        with pytest.raises(repro.ConfigError):
            Request(template="dual-queue", workload=workload, engine="warp")


class TestMicroBatcher:
    def test_routing_by_cost(self, workload):
        batcher = MicroBatcher(inline_cost_threshold=10)
        request = Request(template="dbuf-global", workload=workload)
        assert batcher.route_of(request) == "pool"
        assert MicroBatcher(10**9).route_of(request) == "inline"

    def test_instance_templates_stay_inline(self, workload):
        from repro.core.registry import resolve
        instance = resolve("dbuf-global")
        request = Request(template=instance, workload=workload)
        assert MicroBatcher(10).route_of(request) == "inline"

    def test_grouping_coalesces_same_key(self, workload):
        batcher = MicroBatcher()
        reqs = [Request(template="dbuf-global", workload=workload)
                for _ in range(3)]
        reqs.append(Request(template="dual-queue", workload=workload))
        batches = batcher.group([(r, None) for r in reqs])
        assert sorted(b.size for b in batches) == [1, 3]


class TestServiceBasics:
    def test_single_request_matches_repro_run(self, workload):
        expected = repro.run(workload, "dbuf-global")

        async def scenario(service):
            return await service.submit("dbuf-global", workload)

        response = run_service(scenario)
        assert response.ok and not response.degraded
        assert response.time_ms == pytest.approx(expected.time_ms, rel=1e-9)
        assert response.template == "dbuf-global"
        assert response.workload == workload.name
        assert response.metrics["kernel_calls"] >= 1
        assert response.latency_s > 0
        assert response.attempts == 1

    def test_concurrent_identical_requests_are_batched(self, workload):
        async def scenario(service):
            responses = await asyncio.gather(*[
                service.submit("dbuf-global", workload) for _ in range(12)
            ])
            return responses, service.snapshot()

        responses, stats = run_service(
            scenario, ServiceConfig(max_batch=16, batch_window_s=0.05))
        assert all(r.ok for r in responses)
        assert len({r.time_ms for r in responses}) == 1
        assert max(r.batch_size for r in responses) > 1
        assert stats["batching"]["batches"] < 12
        assert stats["batching"]["coalesced_requests"] > 0

    def test_mixed_workloads_answered_correctly(self, workload):
        other = make_workload(name="svc-other", seed=5)
        expected_a = repro.run(workload, "dbuf-global")
        expected_b = repro.run(other, "dbuf-global")
        assert expected_a.time_ms != expected_b.time_ms

        async def scenario(service):
            return await asyncio.gather(*[
                service.submit("dbuf-global", wl)
                for wl in [workload, other] * 4
            ])

        responses = run_service(scenario)
        for i, response in enumerate(responses):
            expected = expected_a if i % 2 == 0 else expected_b
            assert response.time_ms == pytest.approx(
                expected.time_ms, rel=1e-9)
            assert response.workload == (workload.name if i % 2 == 0
                                         else other.name)

    def test_tree_workloads_served(self, tree_workload):
        expected = repro.run(tree_workload, "rec-hier")

        async def scenario(service):
            return await service.submit("rec-hier", tree_workload)

        response = run_service(scenario)
        assert response.ok
        assert response.time_ms == pytest.approx(expected.time_ms, rel=1e-9)

    def test_submit_on_stopped_service_raises(self, workload):
        async def driver():
            service = TemplateService()
            with pytest.raises(ServiceError, match="not running"):
                await service.submit("dbuf-global", workload)
        asyncio.run(driver())

    def test_stats_snapshot_shape(self, workload):
        async def scenario(service):
            await service.submit("dbuf-global", workload)
            return service.snapshot()

        stats = run_service(scenario)
        for section in ("requests", "batching", "queue", "plan_cache",
                        "latency_ms", "pool", "config"):
            assert section in stats
        assert stats["requests"]["served"] == 1
        assert stats["requests"]["succeeded"] == 1
        assert stats["latency_ms"]["p99"] >= stats["latency_ms"]["p50"] >= 0


class TestAdmissionControl:
    def test_queue_full_returns_structured_rejection(self, workload):
        import time as time_mod

        def slow_run(spec):
            time_mod.sleep(0.2)
            from repro.service.workers import execute_batch
            return execute_batch(spec)

        async def scenario(service):
            first = asyncio.create_task(
                service.submit("dbuf-global", workload))
            await asyncio.sleep(0.05)  # first is admitted and executing
            second = await asyncio.wait_for(
                service.submit("dual-queue", workload), timeout=1.0)
            return await first, second

        first, second = run_service(
            scenario,
            ServiceConfig(max_pending=1, batch_window_s=0.0),
            run_fn=slow_run,
        )
        assert first.ok
        assert second.status == "rejected" and not second.ok
        assert "queue full" in second.reason
        assert "max_pending=1" in second.reason

    def test_rejections_counted(self, workload):
        import time as time_mod

        def slow_run(spec):
            time_mod.sleep(0.15)
            from repro.service.workers import execute_batch
            return execute_batch(spec)

        async def scenario(service):
            first = asyncio.create_task(
                service.submit("dbuf-global", workload))
            await asyncio.sleep(0.05)
            rejected = await service.submit("dbuf-global", workload)
            await first
            return rejected, service.snapshot()

        rejected, stats = run_service(
            scenario, ServiceConfig(max_pending=1), run_fn=slow_run)
        assert rejected.status == "rejected"
        assert stats["requests"]["rejected"] == 1
        assert stats["requests"]["succeeded"] == 1


class TestServiceHandle:
    def test_sync_facade_roundtrip(self, workload):
        expected = repro.run(workload, "dbuf-global")
        with repro.serve(max_batch=8, batch_window_s=0.01) as svc:
            assert isinstance(svc, ServiceHandle)
            futures = [svc.submit("dbuf-global", workload) for _ in range(6)]
            responses = [f.result(timeout=30) for f in futures]
            one = svc.request("dual-queue", workload)
            stats = svc.stats()
        assert all(r.ok for r in responses)
        assert responses[0].time_ms == pytest.approx(
            expected.time_ms, rel=1e-9)
        assert one.ok and one.template == "dual-queue"
        assert stats["requests"]["succeeded"] == 7

    def test_submit_returns_concurrent_future(self, workload):
        with repro.serve() as svc:
            future = svc.submit("thread-mapped", workload)
            assert isinstance(future, concurrent.futures.Future)
            assert future.result(timeout=30).ok

    def test_closed_handle_rejects_use(self, workload):
        svc = repro.serve()
        svc.close()
        svc.close()  # idempotent
        with pytest.raises(ServiceError, match="closed"):
            svc.submit("thread-mapped", workload)

    def test_serve_rejects_config_plus_kwargs(self):
        with pytest.raises(ServiceError, match="not both"):
            repro.serve(ServiceConfig(), max_batch=4)

    def test_bad_config_values_fail_fast(self):
        with pytest.raises(ServiceError):
            ServiceConfig(max_pending=0)
        with pytest.raises(ServiceError):
            ServiceConfig(max_batch=0)
        with pytest.raises(ServiceError):
            ServiceConfig(engine="warp")
        with pytest.raises(ServiceError):
            ServiceConfig(retry_backoff_s=-1)


class TestPriorityQueue:
    def test_strict_priority_dequeue(self):
        q = PriorityClassQueue()
        for priority in ("low", "normal", "high", "low", "high"):
            request = type("R", (), {"priority": priority})()
            q.put_nowait((request, priority))
        drained = [q.get_nowait()[1] for _ in range(q.qsize())]
        assert drained == ["high", "high", "normal", "low", "low"]
        assert q.empty()

    def test_requeue_front_preserves_fifo_within_class(self):
        q = PriorityClassQueue()
        items = []
        for i, priority in enumerate(("normal", "normal", "high")):
            request = type("R", (), {"priority": priority})()
            items.append((request, (priority, i)))
            q.put_nowait(items[-1])
        window = [q.get_nowait() for _ in range(2)]  # high, normal#0
        q.requeue_front(window)
        order = [q.get_nowait()[1] for _ in range(3)]
        assert order == [("high", 2), ("normal", 0), ("normal", 1)]


class TestSLOScheduling:
    def test_priority_separates_batch_identities(self, workload):
        batcher = MicroBatcher()
        reqs = [
            Request(template="dbuf-global", workload=workload,
                    priority=priority)
            for priority in ("high", "high", "low")
        ]
        batches = batcher.group([(r, None) for r in reqs])
        assert sorted(b.size for b in batches) == [1, 2]
        assert {b.priority for b in batches} == {"high", "low"}

    def test_class_bound_rejects_with_kind(self, workload):
        def slow(spec):
            time.sleep(0.1)
            return execute_batch(spec)

        async def scenario(service):
            blocker = asyncio.create_task(
                service.submit("dual-queue", workload, priority="low"))
            await asyncio.sleep(0.03)
            low = await service.submit("dual-queue", workload, priority="low")
            high = await service.submit("dual-queue", workload,
                                        priority="high")
            return await blocker, low, high, service.snapshot()

        blocker, low, high, stats = run_service(
            scenario,
            ServiceConfig(max_pending_per_class={"low": 1},
                          batch_window_s=0.0),
            run_fn=slow,
        )
        assert blocker.ok and high.ok
        assert low.status == "rejected"
        assert "class full" in low.reason
        assert low.priority == "low" and low.id >= 0
        assert stats["requests"]["class_rejected"] == 1
        assert stats["classes"]["low"]["rejected"] == 1
        assert stats["classes"]["high"]["succeeded"] == 1

    def test_tenant_quota_rejects_with_kind(self, workload):
        def slow(spec):
            time.sleep(0.1)
            return execute_batch(spec)

        async def scenario(service):
            blocker = asyncio.create_task(
                service.submit("dual-queue", workload, tenant="acme"))
            await asyncio.sleep(0.03)
            over = await service.submit("dual-queue", workload, tenant="acme")
            other = await service.submit("dual-queue", workload,
                                         tenant="globex")
            return await blocker, over, other, service.snapshot()

        blocker, over, other, stats = run_service(
            scenario,
            ServiceConfig(tenant_quotas={"acme": 1}, batch_window_s=0.0),
            run_fn=slow,
        )
        assert blocker.ok and other.ok
        assert over.status == "rejected"
        assert "tenant quota" in over.reason and over.tenant == "acme"
        assert stats["requests"]["quota_rejected"] == 1

    def test_expired_deadline_is_shed(self, workload):
        async def scenario(service):
            response = await service.submit("dual-queue", workload,
                                            deadline_s=0.001)
            return response, service.snapshot()

        response, stats = run_service(
            scenario, ServiceConfig(batch_window_s=0.05))
        assert response.status == "shed" and not response.ok
        assert "deadline" in response.reason
        assert stats["requests"]["shed"] == 1
        assert stats["requests"]["served"] == 1  # shed is a terminal answer

    def test_shedding_disabled_runs_late_work(self, workload):
        async def scenario(service):
            return await service.submit("dual-queue", workload,
                                        deadline_s=0.001)

        response = run_service(
            scenario,
            ServiceConfig(batch_window_s=0.05, shed_deadlines=False))
        assert response.ok

    def test_low_priority_dynpar_degrades_under_load(self, workload):
        async def scenario(service):
            low = await service.submit("dpar-opt", workload, priority="low")
            high = await service.submit("dpar-opt", workload, priority="high")
            return low, high, service.snapshot()

        low, high, stats = run_service(
            scenario, ServiceConfig(degrade_pending_threshold=1))
        assert low.ok and low.degraded
        # ThreadMappedTemplate's historical .name is "baseline"
        assert low.template == "baseline"
        assert high.ok and not high.degraded  # only low traffic pays
        assert stats["requests"]["load_degraded"] == 1

    def test_autoscaler_grows_the_device_group(self, workload):
        def slow(spec):
            time.sleep(0.3)
            return execute_batch(spec)

        async def scenario(service):
            tasks = [
                asyncio.create_task(service.submit("dual-queue", workload))
                for _ in range(6)
            ]
            await asyncio.sleep(0.15)  # several evaluations, work in flight
            under_load = service.snapshot()
            responses = await asyncio.gather(*tasks)
            return responses, under_load, service.snapshot()

        responses, under_load, final = run_service(
            scenario,
            ServiceConfig(
                devices=1, autoscale=True, max_devices=3,
                scale_up_pending_per_device=1, scale_check_interval_s=0.01,
                scale_cooldown_s=0.02, batch_window_s=0.0, max_batch=1,
            ),
            run_fn=slow,
        )
        assert all(r.ok for r in responses)
        assert under_load["autoscaler"]["scale_ups"] >= 1
        assert under_load["devices"]["devices"] >= 2
        # bounds respected throughout; may have scaled back down when idle
        assert 1 <= final["devices"]["devices"] <= 3

    def test_response_echoes_slo_metadata(self, workload):
        async def scenario(service):
            return await service.submit(
                "dual-queue", workload, tenant="acme", priority="high",
                deadline_s=30.0)

        response = run_service(scenario)
        assert response.ok
        assert response.tenant == "acme" and response.priority == "high"


class TestPercentiles:
    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0

    def test_percentiles_dict(self):
        out = percentiles(range(101))
        assert out["p50"] == pytest.approx(50.0)
        assert out["p95"] == pytest.approx(95.0)
        assert out["p99"] == pytest.approx(99.0)
