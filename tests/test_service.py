"""Tests for the serving layer: admission, batching, routing, metrics,
and the synchronous handle (fault injection lives in
``test_service_faults.py``)."""

import asyncio
import concurrent.futures

import numpy as np
import pytest

import repro
from repro.core.params import TemplateParams
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.errors import ServiceError, WorkloadError
from repro.service import (
    MicroBatcher,
    Request,
    ServiceConfig,
    ServiceHandle,
    TemplateService,
    percentile,
    percentiles,
    workload_cost,
    workload_kind,
)
from repro.trees.generator import generate_tree
from repro.core.recursive import RecursiveTreeWorkload


def make_workload(name="svc-wl", outer=1500, seed=0):
    rng = np.random.default_rng(seed)
    trips = rng.zipf(1.8, size=outer).clip(max=200).astype(np.int64)
    nnz = int(trips.sum())
    return NestedLoopWorkload(
        name=name, trip_counts=trips,
        streams=[AccessStream("x", rng.integers(0, nnz, size=nnz) * 4)],
    )


@pytest.fixture(scope="module")
def workload():
    return make_workload()


@pytest.fixture(scope="module")
def tree_workload():
    return RecursiveTreeWorkload(generate_tree(depth=5, outdegree=3, seed=1),
                                 "descendants")


def run_service(scenario, config=None, **service_kwargs):
    """Run an async scenario against a started service, then stop it."""
    async def driver():
        service = TemplateService(config, **service_kwargs)
        await service.start()
        try:
            return await scenario(service)
        finally:
            await service.stop()
    return asyncio.run(driver())


class TestRequestModel:
    def test_workload_kind_and_cost(self, workload, tree_workload):
        assert workload_kind(workload) == "nested-loop"
        assert workload_kind(tree_workload) == "tree"
        assert workload_cost(workload) == workload.n_pairs
        assert workload_cost(tree_workload) == tree_workload.tree.n_nodes
        with pytest.raises(WorkloadError):
            workload_kind(object())

    def test_batch_key_is_content_addressed(self, workload):
        twin = make_workload()  # same content, different object
        r1 = Request(template="dbuf-global", workload=workload)
        r2 = Request(template="dbuf-global", workload=twin)
        assert r1.batch_key() == r2.batch_key()

    def test_batch_key_distinguishes_inputs(self, workload):
        base = Request(template="dbuf-global", workload=workload)
        assert base.batch_key() != Request(
            template="dual-queue", workload=workload).batch_key()
        assert base.batch_key() != Request(
            template="dbuf-global", workload=workload,
            engine="exact").batch_key()
        assert base.batch_key() != Request(
            template="dbuf-global", workload=workload,
            params=TemplateParams(lb_threshold=64)).batch_key()
        assert base.batch_key() != Request(
            template="dbuf-global", workload=make_workload(seed=7)
        ).batch_key()

    def test_invalid_template_and_engine_fail_eagerly(self, workload):
        with pytest.raises(repro.PlanError):
            Request(template="flat", workload=workload)
        with pytest.raises(repro.ConfigError):
            Request(template="dual-queue", workload=workload, engine="warp")


class TestMicroBatcher:
    def test_routing_by_cost(self, workload):
        batcher = MicroBatcher(inline_cost_threshold=10)
        request = Request(template="dbuf-global", workload=workload)
        assert batcher.route_of(request) == "pool"
        assert MicroBatcher(10**9).route_of(request) == "inline"

    def test_instance_templates_stay_inline(self, workload):
        from repro.core.registry import resolve
        instance = resolve("dbuf-global")
        request = Request(template=instance, workload=workload)
        assert MicroBatcher(10).route_of(request) == "inline"

    def test_grouping_coalesces_same_key(self, workload):
        batcher = MicroBatcher()
        reqs = [Request(template="dbuf-global", workload=workload)
                for _ in range(3)]
        reqs.append(Request(template="dual-queue", workload=workload))
        batches = batcher.group([(r, None) for r in reqs])
        assert sorted(b.size for b in batches) == [1, 3]


class TestServiceBasics:
    def test_single_request_matches_repro_run(self, workload):
        expected = repro.run(workload, "dbuf-global")

        async def scenario(service):
            return await service.submit("dbuf-global", workload)

        response = run_service(scenario)
        assert response.ok and not response.degraded
        assert response.time_ms == pytest.approx(expected.time_ms, rel=1e-9)
        assert response.template == "dbuf-global"
        assert response.workload == workload.name
        assert response.metrics["kernel_calls"] >= 1
        assert response.latency_s > 0
        assert response.attempts == 1

    def test_concurrent_identical_requests_are_batched(self, workload):
        async def scenario(service):
            responses = await asyncio.gather(*[
                service.submit("dbuf-global", workload) for _ in range(12)
            ])
            return responses, service.snapshot()

        responses, stats = run_service(
            scenario, ServiceConfig(max_batch=16, batch_window_s=0.05))
        assert all(r.ok for r in responses)
        assert len({r.time_ms for r in responses}) == 1
        assert max(r.batch_size for r in responses) > 1
        assert stats["batching"]["batches"] < 12
        assert stats["batching"]["coalesced_requests"] > 0

    def test_mixed_workloads_answered_correctly(self, workload):
        other = make_workload(name="svc-other", seed=5)
        expected_a = repro.run(workload, "dbuf-global")
        expected_b = repro.run(other, "dbuf-global")
        assert expected_a.time_ms != expected_b.time_ms

        async def scenario(service):
            return await asyncio.gather(*[
                service.submit("dbuf-global", wl)
                for wl in [workload, other] * 4
            ])

        responses = run_service(scenario)
        for i, response in enumerate(responses):
            expected = expected_a if i % 2 == 0 else expected_b
            assert response.time_ms == pytest.approx(
                expected.time_ms, rel=1e-9)
            assert response.workload == (workload.name if i % 2 == 0
                                         else other.name)

    def test_tree_workloads_served(self, tree_workload):
        expected = repro.run(tree_workload, "rec-hier")

        async def scenario(service):
            return await service.submit("rec-hier", tree_workload)

        response = run_service(scenario)
        assert response.ok
        assert response.time_ms == pytest.approx(expected.time_ms, rel=1e-9)

    def test_submit_on_stopped_service_raises(self, workload):
        async def driver():
            service = TemplateService()
            with pytest.raises(ServiceError, match="not running"):
                await service.submit("dbuf-global", workload)
        asyncio.run(driver())

    def test_stats_snapshot_shape(self, workload):
        async def scenario(service):
            await service.submit("dbuf-global", workload)
            return service.snapshot()

        stats = run_service(scenario)
        for section in ("requests", "batching", "queue", "plan_cache",
                        "latency_ms", "pool", "config"):
            assert section in stats
        assert stats["requests"]["served"] == 1
        assert stats["requests"]["succeeded"] == 1
        assert stats["latency_ms"]["p99"] >= stats["latency_ms"]["p50"] >= 0


class TestAdmissionControl:
    def test_queue_full_returns_structured_rejection(self, workload):
        import time as time_mod

        def slow_run(spec):
            time_mod.sleep(0.2)
            from repro.service.workers import execute_batch
            return execute_batch(spec)

        async def scenario(service):
            first = asyncio.create_task(
                service.submit("dbuf-global", workload))
            await asyncio.sleep(0.05)  # first is admitted and executing
            second = await asyncio.wait_for(
                service.submit("dual-queue", workload), timeout=1.0)
            return await first, second

        first, second = run_service(
            scenario,
            ServiceConfig(max_pending=1, batch_window_s=0.0),
            run_fn=slow_run,
        )
        assert first.ok
        assert second.status == "rejected" and not second.ok
        assert "queue full" in second.reason
        assert "max_pending=1" in second.reason

    def test_rejections_counted(self, workload):
        import time as time_mod

        def slow_run(spec):
            time_mod.sleep(0.15)
            from repro.service.workers import execute_batch
            return execute_batch(spec)

        async def scenario(service):
            first = asyncio.create_task(
                service.submit("dbuf-global", workload))
            await asyncio.sleep(0.05)
            rejected = await service.submit("dbuf-global", workload)
            await first
            return rejected, service.snapshot()

        rejected, stats = run_service(
            scenario, ServiceConfig(max_pending=1), run_fn=slow_run)
        assert rejected.status == "rejected"
        assert stats["requests"]["rejected"] == 1
        assert stats["requests"]["succeeded"] == 1


class TestServiceHandle:
    def test_sync_facade_roundtrip(self, workload):
        expected = repro.run(workload, "dbuf-global")
        with repro.serve(max_batch=8, batch_window_s=0.01) as svc:
            assert isinstance(svc, ServiceHandle)
            futures = [svc.submit("dbuf-global", workload) for _ in range(6)]
            responses = [f.result(timeout=30) for f in futures]
            one = svc.request("dual-queue", workload)
            stats = svc.stats()
        assert all(r.ok for r in responses)
        assert responses[0].time_ms == pytest.approx(
            expected.time_ms, rel=1e-9)
        assert one.ok and one.template == "dual-queue"
        assert stats["requests"]["succeeded"] == 7

    def test_submit_returns_concurrent_future(self, workload):
        with repro.serve() as svc:
            future = svc.submit("thread-mapped", workload)
            assert isinstance(future, concurrent.futures.Future)
            assert future.result(timeout=30).ok

    def test_closed_handle_rejects_use(self, workload):
        svc = repro.serve()
        svc.close()
        svc.close()  # idempotent
        with pytest.raises(ServiceError, match="closed"):
            svc.submit("thread-mapped", workload)

    def test_serve_rejects_config_plus_kwargs(self):
        with pytest.raises(ServiceError, match="not both"):
            repro.serve(ServiceConfig(), max_batch=4)

    def test_bad_config_values_fail_fast(self):
        with pytest.raises(ServiceError):
            ServiceConfig(max_pending=0)
        with pytest.raises(ServiceError):
            ServiceConfig(max_batch=0)
        with pytest.raises(ServiceError):
            ServiceConfig(engine="warp")
        with pytest.raises(ServiceError):
            ServiceConfig(retry_backoff_s=-1)


class TestPercentiles:
    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0

    def test_percentiles_dict(self):
        out = percentiles(range(101))
        assert out["p50"] == pytest.approx(50.0)
        assert out["p95"] == pytest.approx(95.0)
        assert out["p99"] == pytest.approx(99.0)
