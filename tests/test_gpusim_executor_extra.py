"""Additional executor tests: pool overflow, resource co-residency,
concurrency caps, profiler integration."""

import numpy as np
import pytest

from repro.gpusim.config import KEPLER_K20
from repro.gpusim.executor import GpuExecutor
from repro.gpusim.kernels import KernelCosts, Launch, LaunchGraph
from repro.gpusim.profiler import format_metrics_table, profile


def _launch(name="k", blocks=(1000.0,), **kw):
    return Launch(
        name=name, block_size=kw.pop("block_size", 64),
        costs=KernelCosts(block_cycles=np.array(blocks, dtype=float)),
        **kw,
    )


class TestPendingPool:
    def test_pool_overflow_recorded_and_penalized(self):
        small_pool = KEPLER_K20.replace(pending_launch_limit=16)
        def build():
            g = LaunchGraph()
            p = g.add(_launch(name="p", blocks=[100.0]))
            g.add(_launch(name="c", blocks=[1.0], parent=p, count=200,
                          device_stream=1))
            return g
        over = GpuExecutor(small_pool).run(build())
        under = GpuExecutor(KEPLER_K20).run(build())
        assert over.pool_overflows > 0
        assert under.pool_overflows == 0
        assert over.cycles > under.cycles


class TestResourceCoResidency:
    def test_shared_memory_limits_block_packing(self):
        # blocks demanding half the SM's smem: at most 2 resident per SM
        heavy = _launch(
            name="smem", blocks=[10_000.0] * 26, block_size=64,
            shared_mem_per_block=KEPLER_K20.shared_mem_per_sm // 2,
        )
        light = _launch(name="light", blocks=[10_000.0] * 26, block_size=64)
        g1, g2 = LaunchGraph(), LaunchGraph()
        g1.add(heavy)
        g2.add(light)
        t_heavy = GpuExecutor(KEPLER_K20).run(g1).cycles
        t_light = GpuExecutor(KEPLER_K20).run(g2).cycles
        # both fit 2/SM vs 16/SM; with 26 blocks over 13 SMs both take two
        # "rounds" — but heavy cannot overlap more than 2 blocks, so its
        # makespan is at least as long
        assert t_heavy >= t_light

    def test_register_pressure_serializes(self):
        hog = _launch(
            name="regs", blocks=[50_000.0] * 52, block_size=256,
            registers_per_thread=128,  # 2 blocks/SM by registers
        )
        lean = _launch(name="lean", blocks=[50_000.0] * 52, block_size=256,
                       registers_per_thread=24)
        g1, g2 = LaunchGraph(), LaunchGraph()
        g1.add(hog)
        g2.add(lean)
        t_hog = GpuExecutor(KEPLER_K20).run(g1).cycles
        t_lean = GpuExecutor(KEPLER_K20).run(g2).cycles
        # processor sharing is work-conserving, so saturated makespans tie;
        # the register hog must never be faster
        assert t_hog >= t_lean * 0.999


class TestConcurrencyCap:
    def test_more_streams_than_hw_limit(self):
        # 40 single-block kernels in 40 streams: only 32 run concurrently
        cfg = KEPLER_K20
        g = LaunchGraph()
        for i in range(40):
            g.add(_launch(name=f"k{i}", blocks=[5_000.0], stream=i))
        result = GpuExecutor(cfg).run(g)
        overhead = cfg.us_to_cycles(cfg.host_launch_overhead_us)
        total_work = 40 * 5_000.0
        # work conservation bounds the makespan: the 13 SMs cannot finish
        # faster than total/13, and the concurrency cap + tail imbalance
        # cannot blow it up beyond ~2x that
        assert result.cycles >= total_work / cfg.sm_count
        assert result.cycles < overhead + 2 * total_work / cfg.sm_count
        assert result.n_launches == 40


class TestProfilerIntegration:
    def test_metrics_table_formatting(self):
        g = LaunchGraph()
        g.add(_launch(name="k", blocks=[100.0]))
        result = GpuExecutor(KEPLER_K20).run(g)
        metrics = profile(g, result, KEPLER_K20)
        text = format_metrics_table({"baseline": metrics})
        assert "variant" in text
        assert "baseline" in text
        assert "%" in text

    def test_metrics_as_dict(self):
        g = LaunchGraph()
        g.add(_launch(name="k", blocks=[100.0]))
        result = GpuExecutor(KEPLER_K20).run(g)
        d = profile(g, result, KEPLER_K20).as_dict()
        assert set(d) >= {"warp_execution_efficiency", "gld_efficiency",
                          "time_ms", "kernel_calls"}

    def test_utilization_bounded(self):
        g = LaunchGraph()
        g.add(_launch(name="k", blocks=[1000.0] * 100))
        result = GpuExecutor(KEPLER_K20).run(g)
        assert 0.0 < result.sm_utilization <= 1.0


class TestDeterminism:
    def test_same_graph_same_result(self):
        def build():
            g = LaunchGraph()
            p = g.add(_launch(name="p", blocks=[500.0, 700.0, 900.0]))
            g.add(_launch(name="c", blocks=[50.0], parent=p, count=5,
                          device_stream=1))
            return g
        a = GpuExecutor(KEPLER_K20).run(build())
        b = GpuExecutor(KEPLER_K20).run(build())
        assert a.cycles == pytest.approx(b.cycles)
        assert a.sm_busy_cycles == pytest.approx(b.sm_busy_cycles)
