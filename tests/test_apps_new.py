"""Streaming applications (triangles, k-core, MIS): serial references vs
networkx, and template-invariant results through the IR/auto-select path."""

import networkx as nx
import numpy as np
import pytest

from repro.apps import KCoreApp, MISApp, TrianglesApp
from repro.core import NESTED_LOOP_TEMPLATES
from repro.core.registry import canonical_name
from repro.cpu.reference import (
    kcore_serial,
    mis_serial,
    simple_undirected,
    triangles_serial,
)
from repro.errors import GraphError
from repro.graphs import CSRGraph, rmat_graph


@pytest.fixture(scope="module", params=[31, 32])
def graph(request):
    return rmat_graph(scale=6, edge_factor=4, seed=request.param)


@pytest.fixture(scope="module")
def small_graph():
    return rmat_graph(scale=5, edge_factor=3, seed=9)


class TestSimpleUndirected:
    def test_symmetric_loopfree_deduped(self, graph):
        simple = simple_undirected(graph)
        n = simple.n_nodes
        src = np.repeat(np.arange(n), simple.out_degrees)
        dst = simple.col_indices
        assert not np.any(src == dst)
        keys = src * np.int64(n) + dst
        assert np.unique(keys).size == keys.size  # no parallel edges
        rev = np.isin(dst * np.int64(n) + src, keys)
        assert rev.all()  # every edge has its reverse


class TestSerialReferences:
    def test_triangles_match_networkx(self, graph):
        run = triangles_serial(graph)
        g = simple_undirected(graph)
        expected = nx.triangles(nx.Graph(
            [(int(u), int(v)) for u, v in
             zip(np.repeat(np.arange(g.n_nodes), g.out_degrees),
                 g.col_indices)]
        ))
        for node in range(graph.n_nodes):
            assert run.result[node] == expected.get(node, 0)
        assert run.meta["total"] * 3 == int(run.result.sum())

    def test_kcore_matches_networkx(self, graph):
        run = kcore_serial(graph)
        g = simple_undirected(graph)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.n_nodes))
        nxg.add_edges_from(
            (int(u), int(v)) for u, v in
            zip(np.repeat(np.arange(g.n_nodes), g.out_degrees),
                g.col_indices))
        expected = nx.core_number(nxg)
        for node in range(graph.n_nodes):
            assert run.result[node] == expected[node]
        assert run.meta["max_core"] == int(run.result.max())

    def test_mis_is_lexicographically_first(self, graph):
        run = mis_serial(graph)
        in_set = run.result
        simple = simple_undirected(graph)
        # independent: no edge has both endpoints in the set
        src = np.repeat(np.arange(simple.n_nodes), simple.out_degrees)
        assert not np.any(in_set[src] & in_set[simple.col_indices])
        # equals the sequential greedy scan (maximality follows)
        greedy = np.zeros(simple.n_nodes, dtype=bool)
        for u in range(simple.n_nodes):
            if not greedy[simple.neighbors(u)].any():
                greedy[u] = True
        assert np.array_equal(in_set, greedy)
        assert run.meta["set_size"] == int(in_set.sum())

    def test_triangle_free_graph(self):
        g = CSRGraph.from_edges(4, np.array([0, 1, 2]), np.array([1, 2, 3]))
        assert triangles_serial(g).result.sum() == 0
        assert np.array_equal(kcore_serial(g).result, np.ones(4))


@pytest.mark.parametrize("app_cls", [TrianglesApp, KCoreApp, MISApp])
class TestStreamingApps:
    def test_rejects_empty_graph(self, app_cls):
        empty = CSRGraph(np.zeros(1, dtype=np.int64),
                         np.zeros(0, dtype=np.int64), name="empty")
        with pytest.raises(GraphError):
            app_cls(empty)

    def test_auto_run_matches_compute(self, app_cls, graph):
        app = app_cls(graph)
        run = app.run("auto")
        assert np.array_equal(run.result, app.compute())
        assert run.template in {canonical_name(n)
                                for n in NESTED_LOOP_TEMPLATES}
        assert run.gpu_time_ms > 0
        assert run.cpu_time_ms > 0

    def test_every_template_same_result(self, app_cls, small_graph):
        app = app_cls(small_graph)
        expected = app.compute()
        for name in NESTED_LOOP_TEMPLATES:
            run = app.run(name)
            assert np.array_equal(run.result, expected), name
            assert run.template == name
            assert run.gpu_time_ms > 0

    def test_queue_backend_same_result(self, app_cls, small_graph):
        app = app_cls(small_graph)
        run = app.run("auto", backend="queue")
        assert np.array_equal(run.result, app.compute())


class TestAppMeta:
    def test_triangles_meta(self, graph):
        app = TrianglesApp(graph)
        run = app.run("auto")
        assert run.meta["total"] * 3 == int(run.result.sum())
        assert run.meta["forward_edges"] == app._fwd.n_edges

    def test_kcore_rounds(self, graph):
        run = KCoreApp(graph).run("thread-mapped")
        assert run.meta["rounds"] >= 1
        assert run.meta["max_core"] == int(run.result.max())

    def test_mis_rounds(self, graph):
        run = MISApp(graph).run("thread-mapped")
        assert run.meta["rounds"] >= 1
        assert run.meta["set_size"] == int(run.result.sum())
