"""The repro.obs tracing layer: spans, nesting, export, zero-cost-off."""

import json
import pickle
import threading

import numpy as np
import pytest

import repro
from repro import obs
from repro.core.workload import AccessStream, NestedLoopWorkload


@pytest.fixture(autouse=True)
def clean_tracer():
    """Every test starts disabled with an empty tracer and a cold plan
    cache (plan.build counts depend on it), and leaves no residue."""
    from repro.core.plancache import default_cache

    obs.set_enabled(False)
    obs.reset()
    default_cache().clear()
    yield
    obs.set_enabled(False)
    obs.reset()


def make_workload(outer=300, seed=7, name="obs-wl"):
    rng = np.random.default_rng(seed)
    trips = rng.zipf(1.8, size=outer).clip(max=60).astype(np.int64)
    nnz = int(trips.sum())
    return NestedLoopWorkload(
        name=name, trip_counts=trips,
        streams=[AccessStream("x", rng.integers(0, nnz, size=nnz) * 4)],
    )


class TestDisabled:
    def test_span_is_shared_noop(self):
        assert obs.span("anything", key="value") is obs.NOOP_SPAN
        with obs.span("anything"):
            pass
        assert obs.summary()["events"] == 0

    def test_nothing_records_while_disabled(self):
        obs.instant("marker")
        obs.add_counter("c", 5)
        obs.complete("done", 0.0, 1.0)
        obs.sim_complete("k", 0.0, 1.0)
        s = obs.summary()
        assert s["events"] == 0 and s["sim_events"] == 0
        assert s["counters"] == {} and s["wall_ms"] == {}

    def test_template_run_records_nothing(self):
        repro.run(make_workload(), "dbuf-shared")
        assert obs.summary()["events"] == 0

    def test_current_stack_empty(self):
        assert obs.current_stack() == ()


class TestSpans:
    def test_span_records_duration_and_tags(self):
        obs.set_enabled(True)
        with obs.span("outer", template="t"):
            pass
        events = obs.get_tracer().events
        assert len(events) == 1
        ev = events[0]
        assert ev["name"] == "outer" and ev["ph"] == "X"
        assert ev["dur_us"] >= 0 and ev["args"] == {"template": "t"}
        assert ev["parent"] is None

    def test_nesting_records_parent(self):
        obs.set_enabled(True)
        with obs.span("outer"):
            assert obs.current_stack() == ("outer",)
            with obs.span("inner"):
                assert obs.current_stack() == ("outer", "inner")
        by_name = {e["name"]: e for e in obs.get_tracer().events}
        assert by_name["inner"]["parent"] == "outer"
        assert by_name["outer"]["parent"] is None
        # inner finished first and fits inside outer
        assert by_name["inner"]["ts_us"] >= by_name["outer"]["ts_us"]
        assert by_name["inner"]["dur_us"] <= by_name["outer"]["dur_us"]

    def test_nesting_is_per_thread(self):
        obs.set_enabled(True)
        seen = {}

        def worker():
            with obs.span("thread-span"):
                seen["stack"] = obs.current_stack()

        with obs.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # the worker thread does not inherit the main thread's open span
        assert seen["stack"] == ("thread-span",)

    def test_span_records_error_tag(self):
        obs.set_enabled(True)
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("x")
        (ev,) = obs.get_tracer().events
        assert ev["args"]["error"] == "ValueError"

    def test_summary_aggregates_per_name(self):
        obs.set_enabled(True)
        for _ in range(3):
            with obs.span("repeat"):
                pass
        obs.add_counter("widgets", 2)
        obs.add_counter("widgets")
        s = obs.summary()
        assert s["wall_ms"]["repeat"]["count"] == 3
        assert s["counters"] == {"widgets": 3}

    def test_event_cap_keeps_aggregates_exact(self):
        obs.set_enabled(True)
        tracer = obs.get_tracer()
        tracer.max_events = 5
        for _ in range(8):
            with obs.span("capped"):
                pass
        s = obs.summary()
        assert s["events"] == 5 and s["dropped"] == 3
        assert s["wall_ms"]["capped"]["count"] == 8


class TestInstrumentation:
    def test_template_run_emits_catalogue_spans(self):
        wl = make_workload(name="obs-catalogue")
        obs.set_enabled(True)
        repro.run(wl, "dbuf-shared")
        repro.run(wl, "dbuf-shared")  # second run hits the plan cache
        s = obs.summary()
        assert s["wall_ms"]["plan.build"]["count"] == 1
        assert s["wall_ms"]["plan.cache_hit"]["count"] == 1
        assert s["wall_ms"]["gpusim.execute"]["count"] == 2
        assert s["wall_ms"]["gpusim.profile"]["count"] == 2
        assert s["counters"]["plan_cache.hits"] == 1
        assert s["counters"]["plan_cache.misses"] == 1
        # per-kernel events landed on the simulated track
        assert s["sim_events"] > 0

    def test_tree_template_emits_spans(self):
        from repro.core.recursive import RecursiveTreeWorkload
        from repro.trees.generator import generate_tree

        wl = RecursiveTreeWorkload(
            generate_tree(depth=4, outdegree=3, seed=5), "descendants")
        obs.set_enabled(True)
        repro.run(wl, "flat")
        s = obs.summary()
        assert s["wall_ms"]["plan.build"]["count"] == 1
        assert s["wall_ms"]["gpusim.execute"]["count"] == 1

    def test_tracing_does_not_change_results(self):
        wl = make_workload(name="obs-equiv")
        baseline = repro.run(wl, "dual-queue")
        obs.set_enabled(True)
        traced = repro.run(wl, "dual-queue")
        assert traced.time_ms == pytest.approx(baseline.time_ms, rel=1e-12)
        # the no-timeline contract survives tracing
        assert traced.result.records == []


class TestChromeExport:
    def test_valid_trace_with_required_names(self):
        obs.set_enabled(True)
        repro.run(make_workload(name="obs-export"), "dbuf-shared")
        trace = obs.chrome_trace()
        count = obs.validate_chrome_trace(
            trace,
            required_names=("plan.build", "gpusim.execute", "gpusim.profile"),
        )
        assert count > 0
        assert trace["displayTimeUnit"] == "ms"
        # sim events carry the synthetic device pid, wall events do not
        pids = {e["pid"] for e in trace["traceEvents"]
                if e.get("cat") == "sim"}
        assert pids == {obs.SIM_PID}
        json.dumps(trace)  # round-trippable

    def test_write_chrome_trace(self, tmp_path):
        obs.set_enabled(True)
        with obs.span("only"):
            pass
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(path)
        loaded = json.loads(path.read_text())
        obs.validate_chrome_trace(loaded, required_names=("only",))

    def test_validator_rejects_garbage(self):
        with pytest.raises(ValueError, match="traceEvents"):
            obs.validate_chrome_trace({"events": []})
        with pytest.raises(ValueError, match="no name"):
            obs.validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ValueError, match="dur"):
            obs.validate_chrome_trace(
                {"traceEvents": [{"name": "a", "ph": "X", "ts": 0.0}]})
        with pytest.raises(ValueError, match="no events named"):
            obs.validate_chrome_trace(
                {"traceEvents": [
                    {"name": "a", "ph": "X", "ts": 0.0, "dur": 1.0}]},
                required_names=("missing",))
        with pytest.raises(ValueError, match="only metadata"):
            obs.validate_chrome_trace(
                {"traceEvents": [{"name": "process_name", "ph": "M"}]})


class TestExportMerge:
    def test_export_is_picklable_and_merges(self):
        obs.set_enabled(True)
        mark = obs.mark()
        with obs.span("unit-a"):
            pass
        obs.sim_complete("kernel", 0.0, 2.0)
        payload = pickle.loads(pickle.dumps(obs.export_events(since=mark)))

        obs.reset()
        obs.merge_events(payload)
        s = obs.summary()
        assert s["wall_ms"]["unit-a"]["count"] == 1
        assert s["sim_ms"]["kernel"]["count"] == 1

    def test_mark_delta_excludes_earlier_events(self):
        obs.set_enabled(True)
        with obs.span("before"):
            pass
        mark = obs.mark()
        with obs.span("after"):
            pass
        names = [e["name"] for e in obs.export_events(since=mark)["events"]]
        assert names == ["after"]
