"""Plan-cache hardening: hit/cold equivalence, LRU eviction order,
counter accuracy under eviction, and the exposed helpers."""

import numpy as np
import pytest

import repro
from repro.core.plancache import PlanCache, default_cache, fingerprint_of
from repro.core.recursive import RecursiveTreeWorkload
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.errors import ConfigError
from repro.trees.generator import generate_tree


def make_workload(seed=0, outer=1200):
    rng = np.random.default_rng(seed)
    trips = rng.zipf(1.8, size=outer).clip(max=150).astype(np.int64)
    nnz = int(trips.sum())
    return NestedLoopWorkload(
        name=f"pc-{seed}", trip_counts=trips,
        streams=[AccessStream("x", rng.integers(0, nnz, size=nnz) * 4)],
    )


class TestHitEquivalence:
    def test_cache_hit_run_identical_to_cold_build(self):
        """A cache-hit TemplateRun must be indistinguishable from a cold
        one: same timing, same metrics, same schedule — and the graph is
        the *shared* cached object."""
        workload = make_workload(seed=11)
        cache = default_cache()
        cache.clear()
        cold = repro.run(workload, "dbuf-shared")
        hits0 = cache.stats.hits
        warm = repro.run(workload, "dbuf-shared")
        assert cache.stats.hits == hits0 + 1
        assert warm.graph is cold.graph  # shared, not rebuilt
        assert warm.time_ms == cold.time_ms
        assert warm.metrics == cold.metrics
        assert warm.result.cycles == cold.result.cycles
        assert set(warm.schedule) == set(cold.schedule)
        for phase in cold.schedule:
            np.testing.assert_array_equal(
                warm.schedule[phase], cold.schedule[phase])

    def test_tree_template_hit_equivalence(self):
        tree_wl = RecursiveTreeWorkload(
            generate_tree(depth=5, outdegree=3, seed=4), "heights")
        default_cache().clear()
        cold = repro.run(tree_wl, "rec-hier")
        warm = repro.run(tree_wl, "rec-hier")
        assert warm.graph is cold.graph
        assert warm.time_ms == cold.time_ms
        assert warm.metrics == cold.metrics


class TestLRUEviction:
    def test_eviction_order_is_least_recently_used(self):
        cache = PlanCache(maxsize=3)
        for key in ("a", "b", "c"):
            cache.put((key,), key.upper())
        assert cache.keys() == [("a",), ("b",), ("c",)]
        # touching "a" makes "b" the LRU victim
        assert cache.get(("a",)) == "A"
        assert cache.keys() == [("b",), ("c",), ("a",)]
        cache.put(("d",), "D")
        assert len(cache) == 3
        assert cache.keys() == [("c",), ("a",), ("d",)]
        assert cache.get(("b",)) is None  # evicted

    def test_put_existing_key_refreshes_recency(self):
        cache = PlanCache(maxsize=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.put(("a",), 10)  # refresh, not duplicate
        assert len(cache) == 2
        cache.put(("c",), 3)
        assert cache.get(("b",)) is None  # b was LRU
        assert cache.get(("a",)) == 10

    def test_counters_accurate_under_eviction(self):
        cache = PlanCache(maxsize=2)
        assert cache.get(("a",)) is None          # miss 1
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1             # hit 1
        cache.put(("c",), 3)                      # evicts b
        assert cache.get(("b",)) is None          # miss 2 (evicted)
        assert cache.get(("c",)) == 3             # hit 2
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2
        assert cache.stats.lookups == 4
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_maxsize_validation(self):
        with pytest.raises(ConfigError):
            PlanCache(maxsize=0)


class TestExposedHelpers:
    def test_fingerprint_of_dispatches(self):
        workload = make_workload(seed=2)
        assert fingerprint_of(workload) == workload.fingerprint()
        twin = make_workload(seed=2)
        assert fingerprint_of(workload) == fingerprint_of(twin)
        assert fingerprint_of(make_workload(seed=3)) != fingerprint_of(workload)
        tree_wl = RecursiveTreeWorkload(
            generate_tree(depth=3, outdegree=2, seed=1), "descendants")
        assert fingerprint_of(tree_wl) == tree_wl.fingerprint()
        with pytest.raises(ConfigError, match="no fingerprint"):
            fingerprint_of(object())

    def test_snapshot_shape(self):
        cache = PlanCache(maxsize=4)
        cache.put(("a",), 1)
        cache.get(("a",))
        cache.get(("zz",))
        snap = cache.snapshot()
        assert snap == {
            "size": 1, "maxsize": 4, "enabled": True,
            "hits": 1, "misses": 1, "hit_rate": 0.5,
        }

    def test_disabled_cache_snapshot(self):
        cache = PlanCache(enabled=False)
        cache.put(("a",), 1)
        assert cache.get(("a",)) is None
        assert cache.snapshot()["enabled"] is False
        assert cache.snapshot()["size"] == 0
