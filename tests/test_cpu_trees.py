"""Tests for the serial tree baselines."""

import numpy as np

from repro.cpu.trees import (
    best_serial_descendants,
    best_serial_heights,
    descendants_iterative_serial,
    descendants_recursive_py,
    descendants_recursive_serial,
    heights_iterative_serial,
    heights_recursive_py,
    heights_recursive_serial,
)
from repro.trees.generator import generate_tree


class TestDescendants:
    def test_iterative_matches_recursive_oracle(self):
        t = generate_tree(5, 4, sparsity=1.0, seed=3)
        it = descendants_iterative_serial(t)
        np.testing.assert_array_equal(it.result, descendants_recursive_py(t))

    def test_recursive_costs_more_than_iterative(self):
        t = generate_tree(4, 8, sparsity=0.0)
        it = descendants_iterative_serial(t)
        rec = descendants_recursive_serial(t)
        assert rec.ops.calls == t.n_nodes
        assert rec.ops.total > it.ops.total
        np.testing.assert_array_equal(it.result, rec.result)

    def test_best_picks_iterative(self):
        t = generate_tree(4, 4, sparsity=0.0)
        best = best_serial_descendants(t)
        assert best.meta["variant"] == "iterative"

    def test_every_node_counts_itself(self):
        t = generate_tree(3, 3, sparsity=0.0)
        assert descendants_iterative_serial(t).result.min() >= 1


class TestHeights:
    def test_iterative_matches_recursive_oracle(self):
        t = generate_tree(5, 4, sparsity=1.0, seed=7)
        it = heights_iterative_serial(t)
        np.testing.assert_array_equal(it.result, heights_recursive_py(t))

    def test_recursive_adds_call_overhead(self):
        t = generate_tree(4, 8, sparsity=0.0)
        rec = heights_recursive_serial(t)
        assert rec.ops.calls == t.n_nodes

    def test_best_picks_iterative(self):
        t = generate_tree(4, 4, sparsity=0.0)
        assert best_serial_heights(t).meta["variant"] == "iterative"

    def test_leaf_height_is_one(self):
        t = generate_tree(4, 2, sparsity=0.0)
        heights = heights_iterative_serial(t).result
        leaves = t.out_degrees == 0
        assert np.all(heights[leaves] == 1)
