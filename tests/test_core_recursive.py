"""Tests for the recursive tree templates (Fig. 3)."""

import numpy as np
import pytest

from repro.core.params import TemplateParams
from repro.core.recursive import (
    TREE_TEMPLATES,
    FlatTreeTemplate,
    RecHierTreeTemplate,
    RecNaiveTreeTemplate,
    RecursiveTreeWorkload,
)
from repro.errors import LaunchError, WorkloadError
from repro.gpusim import FERMI_C2050, KEPLER_K20
from repro.trees.generator import generate_tree
from repro.trees.metrics import (
    ancestor_pairs,
    node_heights,
    rec_hier_kernel_calls,
    rec_naive_kernel_calls,
    subtree_sizes,
)


@pytest.fixture(scope="module")
def tree():
    return generate_tree(depth=4, outdegree=16, sparsity=0.0)


@pytest.fixture(scope="module")
def sparse_tree():
    return generate_tree(depth=4, outdegree=16, sparsity=2.0, seed=1)


class TestWorkload:
    def test_kind_validation(self):
        t = generate_tree(2, 2)
        with pytest.raises(WorkloadError):
            RecursiveTreeWorkload(t, kind="widths")

    def test_reference_results(self, tree):
        wd = RecursiveTreeWorkload(tree, "descendants")
        wh = RecursiveTreeWorkload(tree, "heights")
        np.testing.assert_array_equal(wd.reference_result(), subtree_sizes(tree))
        np.testing.assert_array_equal(wh.reference_result(), node_heights(tree))


class TestFlat:
    def test_single_kernel(self, tree):
        run = FlatTreeTemplate().run(
            RecursiveTreeWorkload(tree), KEPLER_K20
        )
        assert run.metrics.kernel_calls == 1

    def test_atomics_equal_ancestor_pairs(self, tree):
        run = FlatTreeTemplate().run(RecursiveTreeWorkload(tree), KEPLER_K20)
        assert run.metrics.atomic_ops == ancestor_pairs(tree)

    def test_hot_address_is_root(self, tree):
        run = FlatTreeTemplate().run(RecursiveTreeWorkload(tree), KEPLER_K20)
        counters = run.graph.aggregate_counters()
        # every non-root node RMWs the root once
        assert counters.atomic.max_address_multiplicity == tree.n_nodes - 1

    def test_runs_on_fermi(self, tree):
        run = FlatTreeTemplate().run(RecursiveTreeWorkload(tree), FERMI_C2050)
        assert run.time_ms > 0


class TestRecNaive:
    def test_kernel_call_count_matches_closed_form(self, tree):
        run = RecNaiveTreeTemplate().run(RecursiveTreeWorkload(tree), KEPLER_K20)
        assert run.metrics.kernel_calls == rec_naive_kernel_calls(tree)

    def test_kernel_call_count_sparse(self, sparse_tree):
        run = RecNaiveTreeTemplate().run(
            RecursiveTreeWorkload(sparse_tree), KEPLER_K20
        )
        assert run.metrics.kernel_calls == rec_naive_kernel_calls(sparse_tree)

    def test_rejected_on_fermi(self, tree):
        with pytest.raises(LaunchError):
            RecNaiveTreeTemplate().run(RecursiveTreeWorkload(tree), FERMI_C2050)

    def test_streams_variant_helps(self, tree):
        plain = RecNaiveTreeTemplate().run(
            RecursiveTreeWorkload(tree), KEPLER_K20,
            TemplateParams(streams_per_block=1),
        )
        streams = RecNaiveTreeTemplate().run(
            RecursiveTreeWorkload(tree), KEPLER_K20,
            TemplateParams(streams_per_block=2),
        )
        # Fig. 9: one extra stream per block improves the naive variant
        assert streams.time_ms < plain.time_ms

    def test_trivial_tree(self):
        t = generate_tree(1, 1)
        run = RecNaiveTreeTemplate().run(RecursiveTreeWorkload(t), KEPLER_K20)
        assert run.metrics.kernel_calls == 1


class TestRecHier:
    def test_kernel_call_count_matches_closed_form(self, tree):
        run = RecHierTreeTemplate().run(RecursiveTreeWorkload(tree), KEPLER_K20)
        assert run.metrics.kernel_calls == rec_hier_kernel_calls(tree)

    def test_kernel_call_count_sparse(self, sparse_tree):
        run = RecHierTreeTemplate().run(
            RecursiveTreeWorkload(sparse_tree), KEPLER_K20
        )
        assert run.metrics.kernel_calls == rec_hier_kernel_calls(sparse_tree)

    def test_far_fewer_launches_than_naive(self, tree):
        hier = RecHierTreeTemplate().run(RecursiveTreeWorkload(tree), KEPLER_K20)
        naive = RecNaiveTreeTemplate().run(RecursiveTreeWorkload(tree), KEPLER_K20)
        assert hier.metrics.kernel_calls < naive.metrics.kernel_calls / 3

    def test_faster_than_naive(self, tree):
        hier = RecHierTreeTemplate().run(RecursiveTreeWorkload(tree), KEPLER_K20)
        naive = RecNaiveTreeTemplate().run(RecursiveTreeWorkload(tree), KEPLER_K20)
        assert hier.time_ms < naive.time_ms


class TestShapes:
    """Fig. 7/8 qualitative behaviours."""

    def test_flat_atomics_grow_with_outdegree(self):
        runs = {}
        for d in (4, 8, 16):
            t = generate_tree(4, d, sparsity=0.0)
            runs[d] = FlatTreeTemplate().run(RecursiveTreeWorkload(t), KEPLER_K20)
        assert runs[4].metrics.atomic_ops < runs[8].metrics.atomic_ops
        assert runs[8].metrics.atomic_ops < runs[16].metrics.atomic_ops

    def test_hier_warp_efficiency_drops_with_sparsity(self):
        effs = []
        for s in (0.0, 2.0, 4.0):
            t = generate_tree(4, 16, sparsity=s, seed=2)
            run = RecHierTreeTemplate().run(RecursiveTreeWorkload(t), KEPLER_K20)
            effs.append(run.metrics.warp_execution_efficiency)
        # Fig. 7(b)/(c): sparser trees reduce the hierarchical kernel's
        # warp utilization
        assert effs[0] >= effs[-1]

    def test_registry(self):
        assert set(TREE_TEMPLATES) == {"flat", "rec-naive", "rec-hier"}
