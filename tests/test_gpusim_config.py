"""Unit tests for repro.gpusim.config."""

import pytest

from repro.errors import ConfigError
from repro.gpusim.config import (
    FERMI_C2050,
    KEPLER_K20,
    KEPLER_K40,
    DeviceConfig,
    preset,
    supports_dynamic_parallelism,
)


class TestPresets:
    def test_k20_matches_paper_hardware(self):
        assert KEPLER_K20.sm_count == 13
        assert KEPLER_K20.cores_per_sm == 192
        assert KEPLER_K20.warp_size == 32
        assert KEPLER_K20.compute_capability == (3, 5)

    def test_preset_lookup(self):
        assert preset("k20") is KEPLER_K20
        assert preset("K40") is KEPLER_K40
        assert preset("c2050") is FERMI_C2050

    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigError, match="unknown device preset"):
            preset("h100")

    def test_dynamic_parallelism_support(self):
        assert supports_dynamic_parallelism(KEPLER_K20)
        assert supports_dynamic_parallelism(KEPLER_K40)
        assert not supports_dynamic_parallelism(FERMI_C2050)


class TestValidation:
    def test_rejects_nonpositive_sm_count(self):
        with pytest.raises(ConfigError, match="sm_count"):
            DeviceConfig(sm_count=0)

    def test_rejects_non_power_of_two_warp(self):
        with pytest.raises(ConfigError, match="power of two"):
            DeviceConfig(warp_size=24)

    def test_rejects_block_larger_than_sm(self):
        with pytest.raises(ConfigError):
            DeviceConfig(max_threads_per_block=4096, max_threads_per_sm=2048)

    def test_rejects_smem_block_exceeding_sm(self):
        with pytest.raises(ConfigError, match="shared_mem_per_block"):
            DeviceConfig(shared_mem_per_block=98304)


class TestConversions:
    def test_cycle_roundtrip(self):
        cfg = KEPLER_K20
        assert cfg.ms_to_cycles(cfg.cycles_to_ms(1e6)) == pytest.approx(1e6)

    def test_us_to_cycles(self):
        cfg = DeviceConfig(clock_ghz=1.0)
        assert cfg.us_to_cycles(1.0) == pytest.approx(1000.0)

    def test_one_ms_at_k20_clock(self):
        assert KEPLER_K20.cycles_to_ms(0.706e9) == pytest.approx(1000.0)

    def test_warp_throughput(self):
        assert KEPLER_K20.warp_throughput_per_cycle == pytest.approx(6.0)

    def test_total_cores(self):
        assert KEPLER_K20.total_cores == 13 * 192


class TestReplace:
    def test_replace_returns_new_config(self):
        cfg = KEPLER_K20.replace(sm_count=15)
        assert cfg.sm_count == 15
        assert KEPLER_K20.sm_count == 13

    def test_replace_revalidates(self):
        with pytest.raises(ConfigError):
            KEPLER_K20.replace(warp_size=-1)

    def test_describe_mentions_name(self):
        assert "K20" in KEPLER_K20.describe()
