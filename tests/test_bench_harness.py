"""Tests for the benchmark harness: tables, registry, CLI."""

import json

import pytest

from repro.bench.registry import (
    ExperimentConfig,
    all_experiments,
    get_experiment,
    run_experiment,
)
from repro.bench.table import ResultTable
from repro.errors import ExperimentError


class TestResultTable:
    def test_add_row_and_column(self):
        t = ResultTable("t", ["a", "b"])
        t.add_row(1, 2.5)
        t.add_row(3, 4.5)
        assert t.column("a") == [1, 3]
        assert t.column("b") == [2.5, 4.5]

    def test_row_length_checked(self):
        t = ResultTable("t", ["a"])
        with pytest.raises(ExperimentError):
            t.add_row(1, 2)

    def test_unknown_column(self):
        t = ResultTable("t", ["a"])
        with pytest.raises(ExperimentError):
            t.column("zzz")

    def test_format_contains_everything(self):
        t = ResultTable("my title", ["x", "speedup"])
        t.add_row(32, 2.345)
        t.add_note("shape holds")
        text = t.format()
        assert "my title" in text
        assert "speedup" in text
        assert "2.345" in text
        assert "shape holds" in text

    def test_json_roundtrip(self):
        t = ResultTable("t", ["a"], rows=[[1], [2]], notes=["n"])
        t2 = ResultTable.from_json(t.to_json())
        assert t2.title == t.title
        assert t2.rows == t.rows
        assert t2.notes == t.notes

    def test_csv_export(self, tmp_path):
        t = ResultTable("t", ["a", "b"])
        t.add_row(1, 2)
        t.add_note("hello")
        path = tmp_path / "t.csv"
        t.to_csv(path)
        content = path.read_text()
        assert "# hello" in content
        assert "a,b" in content
        assert "1,2" in content


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {"fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
                    "table1", "table2", "baselines"}
        assert expected <= set(all_experiments())

    def test_get_unknown_raises(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            get_experiment("fig99")

    def test_config_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(scale=0.0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(scale=2.0)

    def test_experiments_have_metadata(self):
        for exp in all_experiments().values():
            assert exp.title
            assert exp.paper_ref
            assert exp.description


class TestSmallExperimentRuns:
    """Tiny-scale smoke runs of the cheapest experiments."""

    def test_baselines_runs(self):
        tables = run_experiment("baselines", ExperimentConfig(scale=0.005))
        (table,) = tables
        assert set(table.column("app")) == {"SSSP", "BC", "PageRank", "SpMV"}
        assert all(v > 0 for v in table.column("measured"))

    def test_fig2_runs(self):
        tables = run_experiment("fig2", ExperimentConfig(scale=0.005))
        (table,) = tables
        assert len(table.rows) == 4


class TestCLI:
    def test_list(self, capsys):
        from repro.bench.runner import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "table2" in out

    def test_run_writes_output(self, tmp_path, capsys):
        from repro.bench.runner import main

        code = main(["baselines", "--scale", "0.005",
                     "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "baselines.csv").exists()
        data = json.loads((tmp_path / "baselines.json").read_text())
        assert data["title"].startswith("baselines")

    def test_unknown_device(self):
        from repro.bench.runner import main
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["baselines", "--device", "h100"])
