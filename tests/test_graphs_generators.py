"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graphs.generators import (
    citeseer_like,
    degree_sequence_graph,
    power_law_degrees,
    uniform_random_graph,
    wiki_vote_like,
)
from repro.graphs.properties import degree_stats, fraction_above_threshold


class TestPowerLawDegrees:
    def test_mean_is_pinned(self):
        deg = power_law_degrees(50_000, mean_degree=36.9, max_degree=1188,
                                min_degree=1, seed=1)
        assert deg.mean() == pytest.approx(36.9, rel=0.1)

    def test_bounds_respected(self):
        deg = power_law_degrees(10_000, 15.0, max_degree=900, min_degree=0)
        assert deg.min() >= 0
        assert deg.max() <= 900

    def test_heavy_tail_exists(self):
        deg = power_law_degrees(50_000, 36.9, max_degree=1188, min_degree=1)
        assert deg.max() > 500  # hubs exist

    def test_determinism(self):
        a = power_law_degrees(1000, 10, 100, seed=3)
        b = power_law_degrees(1000, 10, 100, seed=3)
        assert np.array_equal(a, b)

    def test_rejects_bad_params(self):
        with pytest.raises(DatasetError):
            power_law_degrees(0, 10, 100)
        with pytest.raises(DatasetError):
            power_law_degrees(10, 10, 5)
        with pytest.raises(DatasetError):
            power_law_degrees(10, -1, 5, min_degree=0)


class TestDegreeSequenceGraph:
    def test_degrees_exact(self):
        degrees = np.array([3, 0, 2, 1])
        g = degree_sequence_graph(degrees)
        assert g.out_degrees.tolist() == [3, 0, 2, 1]

    def test_no_self_loops(self):
        g = degree_sequence_graph(np.full(100, 5), seed=9)
        from repro.graphs.csr import expand_rows
        rows = expand_rows(g.row_offsets)
        assert not np.any(rows == g.col_indices)

    def test_rejects_overfull_degree(self):
        with pytest.raises(DatasetError):
            degree_sequence_graph(np.array([5, 0, 0]))

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            degree_sequence_graph(np.array([], dtype=np.int64))


class TestCiteseerLike:
    def test_default_scale_profile(self):
        g = citeseer_like(seed=0)
        stats = degree_stats(g)
        assert 50_000 <= stats.n_nodes <= 80_000
        assert stats.min_degree >= 1
        assert stats.max_degree <= 1188
        # the paper quotes a mean out-degree of 73.9 for CiteSeer
        assert stats.mean_degree == pytest.approx(73.9, rel=0.15)
        assert g.weights is not None

    def test_has_irregularity_for_load_balancing(self):
        g = citeseer_like(seed=0)
        node_frac, edge_frac = fraction_above_threshold(g, 32)
        # with mean degree ~74, most edge mass sits above lbTHRES=32,
        # which is what the load-balancing templates exploit — but
        # low-degree nodes must exist too (CiteSeer's min degree is 1)
        assert edge_frac > 0.6
        assert node_frac < 0.9

    def test_rows_are_sorted(self):
        g = citeseer_like(scale=0.01, seed=0)
        for node in (0, 5, 100):
            nbrs = g.neighbors(node)
            assert np.all(np.diff(nbrs) >= 0)

    def test_locality_validated(self):
        from repro.graphs.generators import degree_sequence_graph
        with pytest.raises(DatasetError):
            degree_sequence_graph(np.array([1, 1]), locality=1.5)

    def test_scale_validation(self):
        with pytest.raises(DatasetError):
            citeseer_like(scale=0.0)
        with pytest.raises(DatasetError):
            citeseer_like(scale=1.5)

    def test_unweighted_option(self):
        g = citeseer_like(scale=0.05, weighted=False)
        assert g.weights is None


class TestWikiVoteLike:
    def test_paper_statistics(self):
        g = wiki_vote_like(seed=0)
        stats = degree_stats(g)
        assert stats.n_nodes == 7115
        assert 70_000 <= stats.n_edges <= 140_000
        assert stats.min_degree <= 1
        assert stats.max_degree <= 893
        assert stats.mean_degree == pytest.approx(14.6, rel=0.15)


class TestUniformRandomGraph:
    def test_degree_range(self):
        g = uniform_random_graph(5000, (16, 48), seed=0)
        deg = g.out_degrees
        assert deg.min() >= 16
        assert deg.max() <= 48

    def test_paper_default_size(self):
        g = uniform_random_graph()
        assert g.n_nodes == 50_000

    def test_validation(self):
        with pytest.raises(DatasetError):
            uniform_random_graph(1, (0, 0))
        with pytest.raises(DatasetError):
            uniform_random_graph(10, (5, 2))
        with pytest.raises(DatasetError):
            uniform_random_graph(10, (5, 100))

    def test_determinism(self):
        a = uniform_random_graph(1000, (2, 6), seed=5)
        b = uniform_random_graph(1000, (2, 6), seed=5)
        assert np.array_equal(a.col_indices, b.col_indices)
