"""Streaming mutation core: splice semantics, batch commit, the delta
contract, incremental analysis, lineage resolution, and the stale-plan
regression around in-place edits."""

import os

import numpy as np
import pytest

import repro
from repro.core import artifactcache
from repro.core.analysis import (
    REBUILD_FRACTION,
    WorkloadAnalysis,
    analysis_stats,
    clear_analysis_cache,
    get_analysis,
)
from repro.core.artifactcache import configure_artifact_cache
from repro.core.mutation import MutationBatch, MutationDelta, PairInserts, splice
from repro.core.plancache import default_cache
from repro.core.workload import MAX_LINEAGE, AccessStream, NestedLoopWorkload
from repro.errors import WorkloadError

pytestmark = []


@pytest.fixture(autouse=True)
def isolated_caches():
    """Tests control the disk cache explicitly and never leak state."""
    saved = artifactcache._cache
    saved_env = os.environ.get(artifactcache.ENV_VAR)
    artifactcache._cache = None
    os.environ.pop(artifactcache.ENV_VAR, None)
    default_cache().clear()
    clear_analysis_cache(reset_stats=True)
    yield
    artifactcache._cache = saved
    if saved_env is None:
        os.environ.pop(artifactcache.ENV_VAR, None)
    else:
        os.environ[artifactcache.ENV_VAR] = saved_env
    default_cache().clear()
    clear_analysis_cache(reset_stats=True)


def make_workload(seed=0, outer=64, name=None, atomics=True):
    rng = np.random.default_rng(seed)
    trips = rng.integers(0, 9, size=outer).astype(np.int64)
    nnz = int(trips.sum())
    return NestedLoopWorkload(
        name=name or f"mut-{seed}",
        trip_counts=trips,
        streams=[
            AccessStream("x", rng.integers(0, 4096, nnz) * 4, "load", 4),
            AccessStream("y", rng.integers(0, 4096, nnz) * 8, "store", 8),
        ],
        atomic_targets=rng.integers(-1, outer, nnz) if atomics else None,
    )


def insert_batch(rng, wl, k=4, rows=None):
    n = wl.outer_size
    rows = rng.integers(0, n, k) if rows is None else np.asarray(rows)
    return MutationBatch(inserts=PairInserts(
        outer_ids=rows,
        stream_addresses=[rng.integers(0, 4096, rows.size) * 4,
                          rng.integers(0, 4096, rows.size) * 8],
        atomic_targets=rng.integers(-1, n, rows.size),
    ))


class TestSplice:
    def test_matches_numpy_reference(self):
        rng = np.random.default_rng(3)
        for _ in range(300):
            n = int(rng.integers(0, 40))
            arr = rng.integers(0, 100, n)
            nd = int(rng.integers(0, min(n, 6) + 1)) if n else 0
            dele = (rng.choice(n, nd, replace=False) if nd
                    else np.empty(0, dtype=np.int64))
            if nd and rng.random() < 0.3:
                dele = np.concatenate([dele, dele[:1]])  # duplicate index
            rem = n - np.unique(dele).size
            ni = int(rng.integers(0, 5))
            pos = (rng.integers(0, rem + 1, ni) if ni
                   else np.empty(0, dtype=np.int64))
            vals = rng.integers(0, 100, ni)
            ref = np.insert(np.delete(arr, dele), pos, vals)
            got = splice(arr, dele, pos, vals)
            assert got.dtype == ref.dtype
            assert np.array_equal(got, ref)

    def test_noop_returns_fresh_copy(self):
        arr = np.arange(10)
        empty = np.empty(0, dtype=np.int64)
        out = splice(arr, empty, empty, empty)
        assert np.array_equal(out, arr)
        assert out is not arr and not np.shares_memory(out, arr)

    def test_repeated_positions_keep_value_order(self):
        arr = np.array([10, 20, 30])
        pos = np.array([1, 1, 1])
        vals = np.array([7, 8, 9])
        empty = np.empty(0, dtype=np.int64)
        assert np.array_equal(splice(arr, empty, pos, vals),
                              np.array([10, 7, 8, 9, 20, 30]))


class TestApplyMutations:
    def test_inserts_land_at_row_end(self):
        wl = make_workload(seed=1)
        row = int(np.flatnonzero(wl.trip_counts > 0)[0])
        before = wl.streams[0].addresses[
            wl.pair_offsets[row]:wl.pair_offsets[row + 1]].copy()
        batch = MutationBatch(inserts=PairInserts(
            outer_ids=np.array([row, row]),
            stream_addresses=[np.array([111, 222]) * 4,
                              np.array([333, 444]) * 8],
            atomic_targets=np.array([-1, -1]),
        ))
        delta = wl.apply_mutations(batch)
        sl = wl.streams[0].addresses[
            wl.pair_offsets[row]:wl.pair_offsets[row + 1]]
        assert np.array_equal(sl[:-2], before)
        assert np.array_equal(sl[-2:], np.array([111, 222]) * 4)
        assert wl.trip_counts[row] == before.size + 2
        assert delta.n_inserted == 2 and delta.n_deleted == 0
        assert np.array_equal(delta.changed, [row])

    def test_delete_pairs_and_offsets_stay_consistent(self):
        wl = make_workload(seed=2)
        nnz = wl.n_pairs
        keep_mask = np.ones(nnz, dtype=bool)
        dele = np.array([0, 3, nnz - 1])
        keep_mask[dele] = False
        expected = wl.streams[1].addresses[keep_mask]
        wl.apply_mutations(MutationBatch(delete_pairs=dele))
        assert wl.n_pairs == nnz - 3
        assert np.array_equal(wl.streams[1].addresses, expected)
        assert wl.pair_offsets[-1] == wl.n_pairs
        assert np.array_equal(np.diff(wl.pair_offsets), wl.trip_counts)

    def test_isolate_and_append(self):
        wl = make_workload(seed=3)
        n = wl.outer_size
        row = int(np.flatnonzero(wl.trip_counts > 0)[-1])
        wl.apply_mutations(MutationBatch(isolate_outer=np.array([row]),
                                         append_outer=2))
        assert wl.outer_size == n + 2  # tombstone keeps the row slot
        assert wl.trip_counts[row] == 0
        assert np.array_equal(wl.trip_counts[-2:], [0, 0])

    def test_version_fingerprint_and_lineage_advance(self):
        wl = make_workload(seed=4)
        rng = np.random.default_rng(0)
        fp0, v0 = wl.fingerprint(), wl.version
        delta = wl.apply_mutations(insert_batch(rng, wl))
        assert wl.version == v0 + 1
        assert wl.fingerprint() != fp0
        assert isinstance(delta, MutationDelta)
        assert delta.parent_fingerprint == fp0
        assert delta.fingerprint == wl.fingerprint()
        assert delta.version_to == wl.version
        assert wl.lineage[-1] is delta

    def test_lineage_is_bounded(self):
        wl = make_workload(seed=5)
        rng = np.random.default_rng(1)
        for _ in range(MAX_LINEAGE + 5):
            wl.apply_mutations(insert_batch(rng, wl, k=1))
        assert len(wl.lineage) == MAX_LINEAGE

    def test_functional_mutated_matches_inplace(self):
        a, b = make_workload(seed=6), make_workload(seed=6)
        parent_fp = b.fingerprint()
        parent_trips = b.trip_counts.copy()
        batch = insert_batch(np.random.default_rng(9), a)
        delta_a = a.apply_mutations(batch)
        child, delta_b = b.mutated(batch)
        assert delta_a.fingerprint == delta_b.fingerprint
        assert child.fingerprint() == a.fingerprint()
        assert np.array_equal(child.trip_counts, a.trip_counts)
        for sa, sc in zip(a.streams, child.streams):
            assert np.array_equal(sa.addresses, sc.addresses)
        # the parent snapshot is untouched
        assert b.fingerprint() == parent_fp
        assert np.array_equal(b.trip_counts, parent_trips)
        assert child.version == b.version + 1

    def test_batch_validation_errors(self):
        wl = make_workload(seed=7)
        with pytest.raises(WorkloadError):
            wl.apply_mutations(MutationBatch())  # empty
        with pytest.raises(WorkloadError):
            wl.apply_mutations("not a batch")
        with pytest.raises(WorkloadError):  # wrong stream count
            wl.apply_mutations(MutationBatch(inserts=PairInserts(
                np.array([0]), [np.array([4])])))
        with pytest.raises(WorkloadError):  # delete out of range
            wl.apply_mutations(MutationBatch(
                delete_pairs=np.array([wl.n_pairs])))
        plain = make_workload(seed=7, atomics=False)
        with pytest.raises(WorkloadError):  # atomics without atomics
            plain.apply_mutations(MutationBatch(inserts=PairInserts(
                np.array([0]), [np.array([4]), np.array([8])],
                atomic_targets=np.array([0]))))


class TestIncrementalAnalysis:
    def test_apply_delta_bit_identical(self):
        wl = make_workload(seed=10)
        rng = np.random.default_rng(2)
        base = get_analysis(wl)
        base.partition(2)  # memoize a threshold so it must be maintained
        delta = wl.apply_mutations(insert_batch(rng, wl))
        child = base.apply_delta(delta)
        scratch = WorkloadAnalysis.from_workload(wl)
        assert child is not None
        assert child.fingerprint == scratch.fingerprint
        assert np.array_equal(child.order, scratch.order)
        assert np.array_equal(child.sorted_trips, scratch.sorted_trips)
        assert np.array_equal(child.trip_values, scratch.trip_values)
        assert np.array_equal(child.trip_freqs, scratch.trip_freqs)
        for s in range(2):
            assert np.array_equal(child.stream_segments(s),
                                  scratch.stream_segments(s))
        for side_c, side_s in zip(child.partition(2), scratch.partition(2)):
            assert np.array_equal(side_c, side_s)
        assert child.split_counts(2) == scratch.split_counts(2)

    def test_apply_delta_never_mutates_parent(self):
        wl = make_workload(seed=11)
        rng = np.random.default_rng(3)
        base = get_analysis(wl)
        order0 = base.order.copy()
        seg0 = base.stream_segments(0).copy()
        delta = wl.apply_mutations(insert_batch(rng, wl))
        base.apply_delta(delta)
        assert np.array_equal(base.order, order0)
        assert np.array_equal(base.stream_segments(0), seg0)

    def test_apply_delta_rejects_wrong_parent(self):
        wl = make_workload(seed=12)
        other = make_workload(seed=13)
        rng = np.random.default_rng(4)
        foreign = get_analysis(other)
        delta = wl.apply_mutations(insert_batch(rng, wl))
        with pytest.raises(WorkloadError):
            foreign.apply_delta(delta)

    def test_large_delta_falls_back(self):
        wl = make_workload(seed=14)
        base = get_analysis(wl)
        # touch well over REBUILD_FRACTION of the pairs
        k = int(wl.n_pairs * (REBUILD_FRACTION + 0.3))
        delta = wl.apply_mutations(MutationBatch(
            delete_pairs=np.arange(k)))
        assert base.apply_delta(delta) is None
        clear_analysis_cache(reset_stats=True)
        # through the cache: the walk counts one fallback, zero hits
        wl2 = make_workload(seed=14)
        get_analysis(wl2)
        big = MutationBatch(delete_pairs=np.arange(int(wl2.n_pairs * 0.55)))
        wl2.apply_mutations(big)
        get_analysis(wl2)
        stats = analysis_stats()
        assert stats["delta_fallbacks"] == 1
        assert stats["incremental_hits"] == 0

    def test_chain_resolution_counts_hops(self):
        wl = make_workload(seed=15)
        rng = np.random.default_rng(5)
        get_analysis(wl)
        for _ in range(5):
            wl.apply_mutations(insert_batch(rng, wl, k=1))
        clear_analysis_cache(reset_stats=True)
        get_analysis(make_workload(seed=15))  # re-anchor the base
        got = get_analysis(wl)
        assert got.fingerprint == wl.fingerprint()
        assert analysis_stats()["incremental_hits"] == 5

    def test_chain_compaction_writes_analysis_tier(self, tmp_path):
        cache = configure_artifact_cache(tmp_path)
        wl = make_workload(seed=16)
        rng = np.random.default_rng(6)
        get_analysis(wl)
        for _ in range(6):
            wl.apply_mutations(insert_batch(rng, wl, k=1))
        clear_analysis_cache()
        get_analysis(wl)  # walks >= _COMPACT_AFTER hops -> compacts
        assert cache.get("analysis", ("nested", wl.fingerprint())) is not None
        # a cold process (no in-object lineage) resolves via the disk tier
        clear_analysis_cache(reset_stats=True)
        cold = make_workload(seed=16)
        cold.trip_counts = wl.trip_counts.copy()
        for a, b in zip(cold.streams, wl.streams):
            a.addresses = b.addresses.copy()
        cold.atomic_targets = wl.atomic_targets.copy()
        cold.invalidate_fingerprint()
        assert cold.fingerprint() == wl.fingerprint()
        got = get_analysis(cold)
        assert analysis_stats()["disk_hits"] == 1
        assert np.array_equal(got.order,
                              WorkloadAnalysis.from_workload(cold).order)


class TestStalePlanRegression:
    def test_inplace_edit_then_invalidate_rekeys_everything(self):
        wl = make_workload(seed=20)
        fp0 = wl.fingerprint()
        v0 = wl.version
        repro.run(wl, "dual-queue")  # populate plan caches pre-edit
        # conserve nnz so only offsets/identity change, not array sizes
        src = int(np.flatnonzero(wl.trip_counts > 1)[0])
        dst = int(np.flatnonzero(wl.trip_counts == 0)[0])
        wl.trip_counts[src] -= 1
        wl.trip_counts[dst] += 1
        wl.invalidate_fingerprint()
        assert wl.fingerprint() != fp0
        assert wl.version == v0 + 1
        assert wl.lineage == []
        assert np.array_equal(np.diff(wl.pair_offsets), wl.trip_counts)
        # the re-run must match a pristine workload with identical arrays,
        # not the pre-edit plan
        edited = repro.run(wl, "dual-queue")
        fresh = NestedLoopWorkload(
            name=wl.name, trip_counts=wl.trip_counts.copy(),
            streams=[AccessStream(s.name, s.addresses.copy(), s.kind,
                                  s.element_bytes) for s in wl.streams],
            atomic_targets=wl.atomic_targets.copy(),
        )
        ref = repro.run(fresh, "dual-queue")
        assert edited.result.cycles == ref.result.cycles

    def test_invalidate_rejects_inconsistent_streams(self):
        wl = make_workload(seed=21)
        wl.trip_counts[0] += 3  # nnz grew but streams did not
        with pytest.raises(WorkloadError):
            wl.invalidate_fingerprint()

    def test_mutation_rerun_never_serves_stale_plan(self):
        wl = make_workload(seed=22)
        rng = np.random.default_rng(7)
        repro.run(wl, "dbuf-global")  # populate plan cache pre-mutation
        wl.apply_mutations(insert_batch(rng, wl))
        after = repro.run(wl, "dbuf-global")
        fresh = NestedLoopWorkload(
            name=wl.name, trip_counts=wl.trip_counts.copy(),
            streams=[AccessStream(s.name, s.addresses.copy(), s.kind,
                                  s.element_bytes) for s in wl.streams],
            atomic_targets=wl.atomic_targets.copy(),
        )
        assert after.result.cycles == repro.run(fresh, "dbuf-global").result.cycles
