"""Property-based tests of the executor's global invariants.

Random launch graphs (host streams + nested launches) must always satisfy:

* work conservation — busy SM-cycles equal the total block work;
* a physical lower bound — makespan >= total work / SM count, and
  >= the largest single block (floor included);
* monotonicity — adding work never shortens the makespan;
* completion — every launch instance executes (counts match).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import (
    KEPLER_K20,
    GpuExecutor,
    KernelCosts,
    Launch,
    LaunchGraph,
)


def block_cycles(upper: float):
    """Per-block cycle costs: exact zeros are legal (empty blocks), but
    sub-cycle costs are not physically meaningful and sit below the
    resolution of float64 absolute-time accounting at makespan scale —
    so snap anything under one cycle to zero."""
    return st.floats(0.0, upper, allow_nan=False).map(
        lambda x: 0.0 if x < 1.0 else x)


@st.composite
def launch_graphs(draw):
    """A random, valid launch graph (host launches + nested children)."""
    graph = LaunchGraph()
    n_host = draw(st.integers(1, 4))
    host_ids = []
    total_blocks = 0
    for h in range(n_host):
        n_blocks = draw(st.integers(1, 6))
        cycles = draw(st.lists(
            block_cycles(50_000.0),
            min_size=n_blocks, max_size=n_blocks,
        ))
        stream = draw(st.integers(0, 2))
        idx = graph.add(Launch(
            name=f"h{h}", block_size=draw(st.sampled_from([32, 64, 192])),
            costs=KernelCosts(block_cycles=np.array(cycles)),
            stream=stream,
        ))
        host_ids.append((idx, n_blocks))
        total_blocks += n_blocks
    n_children = draw(st.integers(0, 3))
    for c in range(n_children):
        parent, parent_blocks = draw(st.sampled_from(host_ids))
        n_blocks = draw(st.integers(1, 3))
        cycles = draw(st.lists(
            block_cycles(20_000.0),
            min_size=n_blocks, max_size=n_blocks,
        ))
        count = draw(st.integers(1, 3))
        graph.add(Launch(
            name=f"c{c}", block_size=64,
            costs=KernelCosts(block_cycles=np.array(cycles)),
            parent=parent,
            parent_block=draw(st.integers(0, parent_blocks - 1)),
            device_stream=draw(st.integers(0, 1)),
            count=count,
        ))
        total_blocks += n_blocks * count
    return graph, total_blocks


class TestExecutorProperties:
    @given(launch_graphs())
    @settings(max_examples=60, deadline=None)
    def test_work_conservation(self, case):
        graph, _ = case
        result = GpuExecutor(KEPLER_K20).run(graph)
        total_work = sum(
            l.costs.total_cycles * l.count for l in graph.launches
        )
        assert result.sm_busy_cycles == pytest.approx(total_work, rel=1e-6)

    @given(launch_graphs())
    @settings(max_examples=60, deadline=None)
    def test_physical_lower_bounds(self, case):
        graph, _ = case
        result = GpuExecutor(KEPLER_K20).run(graph)
        total_work = sum(
            l.costs.total_cycles * l.count for l in graph.launches
        )
        assert result.cycles >= total_work / KEPLER_K20.sm_count - 1e-6
        biggest = max(
            float(l.costs.block_cycles.max()) for l in graph.launches
        )
        assert result.cycles >= biggest - 1e-6

    @given(launch_graphs())
    @settings(max_examples=60, deadline=None)
    def test_all_instances_execute(self, case):
        graph, _ = case
        result = GpuExecutor(KEPLER_K20).run(graph)
        expected = sum(l.count for l in graph.launches)
        assert result.n_launches == expected
        expected_device = sum(
            l.count for l in graph.launches if l.is_device
        )
        assert result.n_device_launches == expected_device

    @given(launch_graphs(), st.floats(10.0, 100_000.0))
    @settings(max_examples=40, deadline=None)
    def test_adding_work_never_helps(self, case, extra):
        graph, _ = case
        base = GpuExecutor(KEPLER_K20).run(graph).cycles
        graph.add(Launch(
            name="extra", block_size=64,
            costs=KernelCosts(block_cycles=np.array([extra])),
            stream=0,
        ))
        grown = GpuExecutor(KEPLER_K20).run(graph).cycles
        assert grown >= base - 1e-6

    @given(launch_graphs())
    @settings(max_examples=40, deadline=None)
    def test_utilization_bounded(self, case):
        graph, _ = case
        result = GpuExecutor(KEPLER_K20).run(graph)
        assert 0.0 <= result.sm_utilization <= 1.0 + 1e-9
