"""Tests for the timeline / Gantt utilities."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.gpusim import (
    KEPLER_K20,
    GpuExecutor,
    KernelCosts,
    Launch,
    LaunchGraph,
    Timeline,
    build_timeline,
)


def _launch(name="k", blocks=(1000.0,), **kw):
    return Launch(name=name, block_size=64,
                  costs=KernelCosts(block_cycles=np.array(blocks, float)), **kw)


def _run(graph):
    return GpuExecutor(KEPLER_K20, record_timeline=True).run(graph)


class TestBuildTimeline:
    def test_requires_records(self):
        g = LaunchGraph()
        g.add(_launch())
        result = GpuExecutor(KEPLER_K20).run(g)  # no recording
        with pytest.raises(WorkloadError, match="record_timeline"):
            build_timeline(result)

    def test_sorted_by_start(self):
        g = LaunchGraph()
        g.add(_launch(name="a", stream=0))
        g.add(_launch(name="b", stream=0))
        tl = build_timeline(_run(g))
        starts = [r.start_cycles for r in tl.records]
        assert starts == sorted(starts)
        assert tl.n_launches == 2

    def test_empty_execution(self):
        result = GpuExecutor(KEPLER_K20, record_timeline=True).run(LaunchGraph())
        tl = build_timeline(result)
        assert tl.n_launches == 0
        assert tl.gantt() == "(empty timeline)\n"


class TestAggregates:
    def test_device_launch_fraction(self):
        g = LaunchGraph()
        p = g.add(_launch(name="p"))
        g.add(_launch(name="c", parent=p))
        tl = build_timeline(_run(g))
        assert tl.device_launch_fraction == pytest.approx(0.5)

    def test_concurrency_overlapping_streams(self):
        g = LaunchGraph()
        g.add(_launch(name="a", blocks=[100_000.0], stream=0))
        g.add(_launch(name="b", blocks=[100_000.0], stream=1))
        tl = build_timeline(_run(g))
        assert tl.concurrency(8).max() > 1.5  # they overlap

    def test_idle_fraction_serial_chain(self):
        # serialized nested launches leave machinery gaps
        g = LaunchGraph()
        p = g.add(_launch(name="p", blocks=[100.0]))
        for _ in range(4):
            g.add(_launch(name="c", blocks=[100.0], parent=p, device_stream=0))
        tl = build_timeline(_run(g))
        assert tl.idle_fraction() > 0.3

    def test_concurrency_validation(self):
        tl = Timeline(records=[], makespan_cycles=0.0)
        with pytest.raises(WorkloadError):
            tl.concurrency(0)


class TestGantt:
    def test_contains_names_and_bars(self):
        g = LaunchGraph()
        p = g.add(_launch(name="parent", blocks=[5000.0]))
        g.add(_launch(name="child", blocks=[1000.0], parent=p))
        tl = build_timeline(_run(g))
        text = tl.gantt()
        assert "parent" in text
        assert "child" in text
        assert "H" in text  # host marker
        assert "d" in text  # device marker
        assert "=" in text

    def test_truncates_long_timelines(self):
        g = LaunchGraph()
        for i in range(30):
            g.add(_launch(name=f"k{i}", stream=i))
        tl = build_timeline(_run(g))
        text = tl.gantt(max_rows=5)
        assert "more launches" in text

    def test_width_validation(self):
        tl = Timeline(records=[], makespan_cycles=1.0)
        with pytest.raises(WorkloadError):
            tl.gantt(width=2)
