"""Unit + property tests for the CSR graph structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph, expand_rows, inner_steps


def small_graph():
    # 0 -> 1,2 ; 1 -> 2 ; 2 -> (none) ; 3 -> 0
    return CSRGraph.from_edges(
        4,
        np.array([0, 0, 1, 3]),
        np.array([1, 2, 2, 0]),
        np.array([1.0, 2.0, 3.0, 4.0]),
    )


class TestConstruction:
    def test_from_edges(self):
        g = small_graph()
        assert g.n_nodes == 4
        assert g.n_edges == 4
        assert g.out_degrees.tolist() == [2, 1, 0, 1]
        assert g.neighbors(0).tolist() == [1, 2]
        assert g.neighbors(2).tolist() == []

    def test_from_edges_unsorted_sources(self):
        g = CSRGraph.from_edges(3, np.array([2, 0, 1]), np.array([0, 1, 2]),
                                np.array([9.0, 1.0, 5.0]))
        assert g.neighbors(0).tolist() == [1]
        assert g.weights[g.row_offsets[2]] == 9.0

    def test_rejects_bad_offsets(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([1, 2]), np.array([0]))
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 0]))

    def test_rejects_offsets_nnz_mismatch(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 3]), np.array([0]))

    def test_rejects_out_of_range_columns(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_rejects_bad_weights_shape(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([0]), np.array([1.0, 2.0]))

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, np.array([0]), np.array([5]))

    def test_neighbors_range_check(self):
        with pytest.raises(GraphError):
            small_graph().neighbors(7)


class TestConversions:
    def test_to_scipy_roundtrip(self):
        g = small_graph()
        mat = g.to_scipy()
        assert mat.shape == (4, 4)
        assert mat[0, 1] == 1.0
        assert mat[3, 0] == 4.0

    def test_to_networkx(self):
        nxg = small_graph().to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 4
        assert nxg[0][2]["weight"] == 2.0

    def test_reverse_transposes(self):
        g = small_graph()
        r = g.reverse()
        assert r.neighbors(2).tolist() in ([0, 1], [1, 0])
        assert r.n_edges == g.n_edges
        # reversing twice restores the adjacency (as sets per node)
        rr = r.reverse()
        for node in range(4):
            assert sorted(rr.neighbors(node).tolist()) == sorted(
                g.neighbors(node).tolist()
            )

    def test_with_unit_weights(self):
        g = small_graph().with_unit_weights()
        assert np.all(g.weights == 1.0)


class TestExpandHelpers:
    def test_expand_rows(self):
        assert expand_rows(np.array([0, 2, 2, 5])).tolist() == [0, 0, 2, 2, 2]

    def test_inner_steps(self):
        assert inner_steps(np.array([0, 2, 2, 5])).tolist() == [0, 1, 0, 1, 2]

    def test_empty(self):
        assert expand_rows(np.array([0])).size == 0
        assert inner_steps(np.array([0, 0])).size == 0

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, degrees):
        offsets = np.zeros(len(degrees) + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        rows = expand_rows(offsets)
        steps = inner_steps(offsets)
        assert rows.size == sum(degrees)
        # reconstruct: offsets[row] + step == arange(nnz)
        if rows.size:
            assert np.array_equal(offsets[rows] + steps, np.arange(rows.size))
        # every row id appears exactly degree times
        counts = np.bincount(rows, minlength=len(degrees))
        assert counts.tolist() == degrees
