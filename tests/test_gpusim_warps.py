"""Unit + property tests for warp formation and divergence stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.gpusim.warps import WarpExecStats, divergence_steps, form_warps


class TestFormWarps:
    def test_exact_multiple(self):
        shape = form_warps(np.arange(64))
        assert shape.n_warps == 2
        assert shape.active.all()

    def test_padding(self):
        shape = form_warps(np.arange(40))
        assert shape.n_warps == 2
        assert shape.active[0].all()
        assert shape.active[1, :8].all()
        assert not shape.active[1, 8:].any()

    def test_empty(self):
        shape = form_warps(np.array([], dtype=np.int64))
        assert shape.n_warps == 0

    def test_block_boundary_padding(self):
        # 2 blocks of 48 threads: each block pads its second warp to 32
        shape = form_warps(np.ones(96, dtype=np.int64), block_size=48)
        assert shape.n_warps == 4
        # warp 1 (second of block 0) has 16 active lanes
        assert shape.active[1].sum() == 16
        assert shape.active[2].sum() == 32

    def test_block_multiple_of_warp_no_extra_padding(self):
        shape = form_warps(np.ones(128, dtype=np.int64), block_size=64)
        assert shape.n_warps == 4
        assert shape.active.all()

    def test_values_preserved_across_block_padding(self):
        vals = np.arange(96)
        shape = form_warps(vals, block_size=48)
        recovered = shape.values[shape.active]
        assert recovered.tolist() == vals.tolist()

    def test_rejects_2d(self):
        with pytest.raises(WorkloadError):
            form_warps(np.zeros((2, 2)))

    def test_rejects_bad_warp_size(self):
        with pytest.raises(WorkloadError):
            form_warps(np.arange(4), warp_size=0)


class TestDivergenceSteps:
    def test_uniform_loop_no_divergence(self):
        shape = form_warps(np.full(32, 7))
        issued, active = divergence_steps(shape)
        assert issued.tolist() == [7]
        assert active.tolist() == [7 * 32]

    def test_single_long_lane(self):
        trips = np.ones(32, dtype=np.int64)
        trips[0] = 100
        shape = form_warps(trips)
        issued, active = divergence_steps(shape)
        assert issued.tolist() == [100]
        assert active.tolist() == [100 + 31]

    def test_zero_trips(self):
        shape = form_warps(np.zeros(32, dtype=np.int64))
        issued, active = divergence_steps(shape)
        assert issued.tolist() == [0]
        assert active.tolist() == [0]

    def test_rejects_negative_trips(self):
        with pytest.raises(WorkloadError):
            divergence_steps(form_warps(np.array([-1] * 32)))

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_invariants(self, trips):
        shape = form_warps(np.array(trips, dtype=np.int64))
        issued, active = divergence_steps(shape)
        # total active slots == total trips (work conservation)
        assert active.sum() == sum(trips)
        # issued steps bound active slots
        assert np.all(active <= issued * 32)
        assert np.all(issued <= active) or active.sum() == 0 or np.all(
            issued <= np.maximum(active, issued)
        )


class TestWarpExecStats:
    def test_efficiency_uniform(self):
        stats = WarpExecStats()
        stats.add_uniform(64, steps=10)
        assert stats.warp_execution_efficiency == pytest.approx(1.0)

    def test_efficiency_partial_warp(self):
        stats = WarpExecStats()
        stats.add_uniform(16, steps=1)
        assert stats.warp_execution_efficiency == pytest.approx(0.5)

    def test_efficiency_divergent_loop(self):
        trips = np.zeros(32, dtype=np.int64)
        trips[0] = 10
        stats = WarpExecStats()
        stats.add_loop(form_warps(trips))
        assert stats.warp_execution_efficiency == pytest.approx(10 / 320)

    def test_empty_stats_report_full_efficiency(self):
        assert WarpExecStats().warp_execution_efficiency == 1.0

    def test_merge(self):
        a = WarpExecStats()
        a.add_uniform(32)
        b = WarpExecStats()
        b.add_uniform(16)
        a.merge(b)
        assert a.issued_steps == 2
        assert a.active_slots == 48

    def test_merge_rejects_mismatched_warp_size(self):
        with pytest.raises(WorkloadError):
            WarpExecStats(warp_size=32).merge(WarpExecStats(warp_size=64))

    def test_add_counts_validates(self):
        stats = WarpExecStats()
        with pytest.raises(WorkloadError):
            stats.add_counts(1, 64)  # 64 active > 32 capacity

    def test_paper_baseline_range(self):
        # An SSSP-like degree distribution should produce low warp
        # efficiency under pure thread mapping (paper baseline: 35.6%).
        rng = np.random.default_rng(7)
        trips = rng.zipf(1.8, size=4096).clip(max=1000)
        stats = WarpExecStats()
        stats.add_loop(form_warps(trips))
        assert stats.warp_execution_efficiency < 0.6
