"""Unit tests for the occupancy calculator."""

import pytest

from repro.errors import ConfigError
from repro.gpusim.config import KEPLER_K20, DeviceConfig
from repro.gpusim.occupancy import best_block_size, occupancy


class TestOccupancy:
    def test_192_threads_low_resources(self):
        # The paper's thread-mapped configuration: 192 threads/block with
        # low register/smem use -> 10 blocks resident (warp-limited).
        occ = occupancy(KEPLER_K20, 192, registers_per_thread=24)
        assert occ.warps_per_block == 6
        assert occ.blocks_per_sm == 10
        assert occ.limiter == "warps"
        assert occ.occupancy(KEPLER_K20) == pytest.approx(60 / 64)

    def test_256_threads_full_occupancy(self):
        occ = occupancy(KEPLER_K20, 256, registers_per_thread=24)
        assert occ.warps_per_sm == 64
        assert occ.occupancy(KEPLER_K20) == pytest.approx(1.0)

    def test_small_blocks_limited_by_block_slots(self):
        occ = occupancy(KEPLER_K20, 32, registers_per_thread=24)
        assert occ.blocks_per_sm == KEPLER_K20.max_blocks_per_sm
        assert occ.limiter == "blocks"
        # 16 blocks x 1 warp = 16/64 warps: the "low hardware occupancy"
        # the paper observes for 32-thread blocks.
        assert occ.occupancy(KEPLER_K20) == pytest.approx(0.25)

    def test_register_limited(self):
        occ = occupancy(KEPLER_K20, 256, registers_per_thread=128)
        # 128 regs x 256 threads = 32768 regs/block -> 2 blocks
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "registers"

    def test_shared_memory_limited(self):
        occ = occupancy(KEPLER_K20, 64, shared_mem_per_block=16384)
        assert occ.blocks_per_sm == 3
        assert occ.limiter == "shared_mem"

    def test_threads_per_sm_bound(self):
        occ = occupancy(KEPLER_K20, 1024, registers_per_thread=0)
        assert occ.blocks_per_sm == 2  # 2048 / 1024

    def test_warps_rounded_up_for_partial_warp(self):
        occ = occupancy(KEPLER_K20, 96)
        assert occ.warps_per_block == 3

    def test_non_multiple_of_warp(self):
        occ = occupancy(KEPLER_K20, 100)
        assert occ.warps_per_block == 4


class TestOccupancyErrors:
    def test_zero_block(self):
        with pytest.raises(ConfigError):
            occupancy(KEPLER_K20, 0)

    def test_block_too_large(self):
        with pytest.raises(ConfigError):
            occupancy(KEPLER_K20, 2048)

    def test_too_many_registers(self):
        with pytest.raises(ConfigError):
            occupancy(KEPLER_K20, 64, registers_per_thread=300)

    def test_too_much_shared_memory(self):
        with pytest.raises(ConfigError):
            occupancy(KEPLER_K20, 64, shared_mem_per_block=1 << 20)

    def test_never_resident_raises(self):
        tiny = DeviceConfig(registers_per_sm=4096, max_registers_per_thread=255)
        with pytest.raises(ConfigError, match="cannot be resident"):
            occupancy(tiny, 1024, registers_per_thread=255)

    def test_negative_shared_memory(self):
        with pytest.raises(ConfigError):
            occupancy(KEPLER_K20, 64, shared_mem_per_block=-1)


class TestBestBlockSize:
    def test_prefers_full_occupancy(self):
        size = best_block_size(KEPLER_K20, registers_per_thread=24)
        occ = occupancy(KEPLER_K20, size, registers_per_thread=24)
        assert occ.occupancy(KEPLER_K20) == pytest.approx(1.0)

    def test_ties_break_to_smaller_block(self):
        # both 128 and 256 reach 100% on K20 with low registers
        assert best_block_size(KEPLER_K20, registers_per_thread=24) == 128

    def test_heavy_registers_change_choice(self):
        size = best_block_size(KEPLER_K20, registers_per_thread=128)
        assert size >= 32
        # must still be resident
        occupancy(KEPLER_K20, size, registers_per_thread=128)

    def test_empty_candidates_raise(self):
        with pytest.raises(ConfigError):
            best_block_size(KEPLER_K20, candidates=(2048,))
