"""Unit tests for the kernel cost builder and memory latency model."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.gpusim.config import KEPLER_K20
from repro.gpusim.costmodel import (
    KernelCostBuilder,
    effective_segment_cycles,
    resident_warps_estimate,
)


class TestEffectiveSegmentCycles:
    def test_bandwidth_bound_at_high_occupancy(self):
        # enough resident warps: the latency term falls below the
        # bandwidth floor and the cost bottoms out at cycles_per_segment
        cfg = KEPLER_K20
        assert effective_segment_cycles(cfg, 256) == pytest.approx(
            cfg.cycles_per_segment
        )

    def test_latency_bound_for_single_warp(self):
        cfg = KEPLER_K20
        cost = effective_segment_cycles(cfg, 1)
        assert cost == pytest.approx(
            cfg.dram_latency_cycles / cfg.memory_parallelism_per_warp
        )
        assert cost > 10 * cfg.cycles_per_segment

    def test_monotonically_nonincreasing(self):
        cfg = KEPLER_K20
        costs = [effective_segment_cycles(cfg, w) for w in (1, 2, 4, 8, 16, 32, 64)]
        assert costs == sorted(costs, reverse=True)

    def test_rejects_zero_warps(self):
        with pytest.raises(WorkloadError):
            effective_segment_cycles(KEPLER_K20, 0)


class TestResidentWarpsEstimate:
    def test_large_grid_reaches_occupancy_limit(self):
        warps = resident_warps_estimate(KEPLER_K20, 192, n_blocks=1000)
        assert warps == pytest.approx(60.0)  # 10 blocks x 6 warps

    def test_single_small_block(self):
        warps = resident_warps_estimate(KEPLER_K20, 32, n_blocks=1)
        assert warps == pytest.approx(1.0)

    def test_concurrent_grids_raise_residency(self):
        alone = resident_warps_estimate(KEPLER_K20, 32, n_blocks=1)
        crowd = resident_warps_estimate(KEPLER_K20, 32, n_blocks=1,
                                        concurrent_grids=64)
        assert crowd > alone

    def test_sibling_cap(self):
        capped = resident_warps_estimate(KEPLER_K20, 32, n_blocks=1,
                                         concurrent_grids=10_000)
        # bounded by the concurrent-kernel hardware limit and occupancy
        assert capped <= KEPLER_K20.max_warps_per_sm


class TestKernelCostBuilder:
    def _builder(self, **kw):
        return KernelCostBuilder(KEPLER_K20, "k", block_size=64, n_blocks=4, **kw)

    def test_uniform_work_spreads_evenly(self):
        b = self._builder()
        b.add_uniform(insts=100)
        launch = b.build()
        cycles = launch.costs.block_cycles
        assert np.allclose(cycles, cycles[0])
        assert cycles[0] > 0

    def test_divergent_loop_inflates_issue(self):
        trips = np.zeros(256, dtype=np.int64)
        trips[::32] = 64  # one busy lane per warp
        b = self._builder()
        b.add_loop(trips, insts_per_iter=4)
        eff = b.counters.warp.warp_execution_efficiency
        assert eff == pytest.approx(1 / 32)

    def test_traffic_requires_matching_shape(self):
        b = self._builder()
        with pytest.raises(WorkloadError):
            b.add_traffic(np.ones(3), 12)

    def test_traffic_records_efficiency(self):
        b = self._builder()
        tx = np.ones(b.n_warps)
        seg = KEPLER_K20.mem_segment_bytes
        b.add_traffic(tx, requested_bytes=b.n_warps * seg, kind="load")
        assert b.counters.load_traffic.efficiency == pytest.approx(1.0)

    def test_store_traffic_separate(self):
        b = self._builder()
        b.add_traffic(np.ones(b.n_warps), 32, kind="store")
        assert b.counters.store_traffic.transactions == b.n_warps
        assert b.counters.load_traffic.transactions == 0

    def test_unknown_traffic_kind(self):
        b = self._builder()
        with pytest.raises(WorkloadError):
            b.add_traffic(np.ones(b.n_warps), 0, kind="texture")

    def test_atomics_counted(self):
        b = self._builder()
        addrs = np.zeros(256, dtype=np.int64)  # all threads hit address 0
        b.add_atomics(addrs)
        assert b.counters.atomic.n_atomics == 256
        # hottest address across the whole launch, not per warp
        assert b.counters.atomic.max_address_multiplicity == 256

    def test_atomics_sentinel_skips_thread(self):
        b = self._builder()
        addrs = np.full(256, -1, dtype=np.int64)
        addrs[0] = 7
        b.add_atomics(addrs)
        assert b.counters.atomic.n_atomics == 1

    def test_hot_tail_accumulates(self):
        b = self._builder()
        b.add_hot_address_tail(1000)
        launch = b.build()
        assert launch.costs.serial_tail == pytest.approx(
            1000 * KEPLER_K20.atomic_same_address_cycles
        )

    def test_warp_of_thread_block_aware(self):
        b = self._builder()
        # thread 64 = block 1 lane 0 -> warp 2 (2 warps per 64-thread block)
        assert b.warp_of_thread(np.array([0, 31, 32, 64])).tolist() == [0, 0, 1, 2]

    def test_warp_of_thread_range_check(self):
        b = self._builder()
        with pytest.raises(WorkloadError):
            b.warp_of_thread(np.array([10_000]))

    def test_memory_latency_penalty_for_tiny_kernels(self):
        small = KernelCostBuilder(KEPLER_K20, "s", block_size=32, n_blocks=1)
        big = KernelCostBuilder(KEPLER_K20, "b", block_size=192, n_blocks=100)
        tx_small = np.ones(small.n_warps)
        tx_big = np.ones(big.n_warps)
        small.add_traffic(tx_small, 128)
        big.add_traffic(tx_big, 128 * big.n_warps)
        per_tx_small = small.build().costs.total_cycles
        per_tx_big = big.build().costs.total_cycles / big.n_warps
        assert per_tx_small > 5 * per_tx_big

    def test_zero_blocks_rejected(self):
        with pytest.raises(WorkloadError):
            KernelCostBuilder(KEPLER_K20, "k", block_size=64, n_blocks=0)

    def test_build_sets_resident_hint(self):
        launch = self._builder().build()
        assert launch.resident_warps_hint > 0
