"""Tests for the dynamic-parallelism helper module."""

import pytest

from repro.errors import LaunchError
from repro.gpusim import (
    FERMI_C2050,
    KEPLER_K20,
    estimate_bulk_overhead,
    issue_cost_cycles,
    require_device_support,
)


class TestRequireDeviceSupport:
    def test_kepler_ok(self):
        require_device_support(KEPLER_K20, "dpar-opt")  # no raise

    def test_fermi_raises_with_guidance(self):
        with pytest.raises(LaunchError, match="delayed-buffer"):
            require_device_support(FERMI_C2050, "dpar-opt")

    def test_error_names_the_template(self):
        with pytest.raises(LaunchError, match="dpar-naive"):
            require_device_support(FERMI_C2050, "dpar-naive")


class TestIssueCost:
    def test_scales_linearly(self):
        one = issue_cost_cycles(KEPLER_K20, 1)
        ten = issue_cost_cycles(KEPLER_K20, 10)
        assert ten == pytest.approx(10 * one)

    def test_zero_launches_free(self):
        assert issue_cost_cycles(KEPLER_K20, 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(LaunchError):
            issue_cost_cycles(KEPLER_K20, -1)


class TestBulkOverheadEstimate:
    def test_drain_time_from_throughput(self):
        est = estimate_bulk_overhead(KEPLER_K20, 1000)
        expected_us = 1000 / KEPLER_K20.device_launch_throughput_per_us
        assert est.gmu_drain_us == pytest.approx(expected_us)
        assert est.total_us_lower_bound >= est.gmu_drain_us

    def test_pool_overflow_flag(self):
        under = estimate_bulk_overhead(KEPLER_K20, 100)
        over = estimate_bulk_overhead(
            KEPLER_K20, KEPLER_K20.pending_launch_limit + 1
        )
        assert not under.pool_overflow
        assert over.pool_overflow

    def test_rejects_negative(self):
        with pytest.raises(LaunchError):
            estimate_bulk_overhead(KEPLER_K20, -5)

    def test_estimate_consistent_with_executor(self):
        """The closed-form drain time must lower-bound the executor's
        simulated time for the same launch count."""
        import numpy as np

        from repro.gpusim import GpuExecutor, KernelCosts, Launch, LaunchGraph

        n = 200
        graph = LaunchGraph()
        parent = graph.add(Launch(
            name="p", block_size=64,
            costs=KernelCosts(block_cycles=np.array([10.0])),
        ))
        graph.add(Launch(
            name="c", block_size=64,
            costs=KernelCosts(block_cycles=np.array([1.0])),
            parent=parent, count=n, device_stream=1,
        ))
        result = GpuExecutor(KEPLER_K20).run(graph)
        est = estimate_bulk_overhead(KEPLER_K20, n)
        assert result.time_ms * 1000 >= est.gmu_drain_us
