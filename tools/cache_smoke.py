#!/usr/bin/env python
"""Smoke-check the disk artifact cache across process boundaries.

Fast end-to-end gate (wired into ``make test`` as ``make cache-smoke``):

1. **two-process round trip** — a child process runs a template with a
   fresh ``--cache-dir`` (cold: misses + writes on every tier), then a
   *second* child process runs the same workload and must hit the disk
   ``plan`` and ``run`` tiers it never populated itself, producing a
   bit-identical simulated time;
2. **analysis sharing** — the second process is also probed with a
   different template of the same workload, which must reuse the disk
   ``analysis`` tier (the two-level pipeline's cross-template artifact);
3. **corruption tolerance** — every cached entry is truncated/garbled in
   place; a third process must degrade to cold misses (recording
   ``corrupt`` counts), never crash, and still produce the same result.

Children are spawned with ``sys.executable`` so nothing is inherited via
fork: every hit in steps 1-3 is a genuine disk round trip.  Exit code 0 =
all checks passed.  Keep this under a few seconds.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: runs in a fresh child process: execute one template against the shared
#: cache dir and report simulated time + per-tier cache counters as JSON
_CHILD = r"""
import json, sys
import numpy as np
from repro.core.artifactcache import configure_artifact_cache
from repro.core.registry import resolve
from repro.core.workload import AccessStream, NestedLoopWorkload
from repro.gpusim.config import KEPLER_K20

cache_dir, template = sys.argv[1], sys.argv[2]
cache = configure_artifact_cache(cache_dir)
rng = np.random.default_rng(7)
trips = rng.zipf(1.8, size=400).clip(max=60).astype(np.int64)
nnz = int(trips.sum())
workload = NestedLoopWorkload(
    name="cache-smoke", trip_counts=trips,
    streams=[AccessStream("x", rng.integers(0, nnz, size=nnz) * 4)],
)
run = resolve(template, kind="nested-loop").run(workload, KEPLER_K20)
print(json.dumps({"time_ms": run.time_ms, "stats": cache.snapshot()}))
"""


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_child(cache_dir: str, template: str = "dual-queue") -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_CACHE_DIR", None)  # the child must rely on argv alone
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, cache_dir, template],
        capture_output=True, text=True, env=env,
    )
    if proc.returncode != 0:
        fail(f"child process failed:\n{proc.stderr}")
    return json.loads(proc.stdout)


def tier(report: dict, name: str) -> dict:
    return report["stats"]["tiers"][name]


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-cache-smoke-") as tmp:
        cold = run_child(tmp)
        if tier(cold, "plan")["writes"] < 1 or tier(cold, "run")["writes"] < 1:
            fail(f"cold run wrote nothing: {cold['stats']}")
        if tier(cold, "plan")["hits"] or tier(cold, "run")["hits"]:
            fail(f"cold run hit a fresh cache: {cold['stats']}")

        warm = run_child(tmp)
        if tier(warm, "plan")["hits"] < 1 or tier(warm, "run")["hits"] < 1:
            fail(f"second process missed the disk cache: {warm['stats']}")
        if warm["time_ms"] != cold["time_ms"]:
            fail(f"cached result diverged: {cold['time_ms']} "
                 f"vs {warm['time_ms']}")
        print(f"round trip ok: plan {tier(warm, 'plan')['hits']} hit(s), "
              f"run {tier(warm, 'run')['hits']} hit(s) across processes")

        other = run_child(tmp, template="thread-mapped")
        if tier(other, "analysis")["hits"] < 1:
            fail("a different template did not reuse the shared workload "
                 f"analysis: {other['stats']}")
        print(f"analysis sharing ok: "
              f"{tier(other, 'analysis')['hits']} cross-template hit(s)")

        entries = sorted(Path(tmp).rglob("*.pkl"))
        if not entries:
            fail("no cache entries on disk after three runs")
        for i, entry in enumerate(entries):
            # truncate every other entry, garble the rest
            if i % 2 == 0:
                entry.write_bytes(entry.read_bytes()[:3])
            else:
                entry.write_bytes(b"not a pickle")
        mangled = run_child(tmp)
        stats = mangled["stats"]
        if stats["corrupt"] < 1:
            fail(f"corrupted entries were not detected: {stats}")
        if stats["hits"]:
            fail(f"a corrupted entry served as a hit: {stats}")
        if mangled["time_ms"] != cold["time_ms"]:
            fail(f"recovery run diverged: {cold['time_ms']} "
                 f"vs {mangled['time_ms']}")
        print(f"corruption tolerance ok: {stats['corrupt']} corrupt "
              f"entr{'y' if stats['corrupt'] == 1 else 'ies'} degraded "
              f"to misses, result unchanged")
    print("cache smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
