#!/usr/bin/env python
"""Repo linter: ruff when available, a stdlib fallback otherwise.

``make lint`` runs this over ``src tests benchmarks``.  When ``ruff`` is
installed (it is not baked into every CI image) the job delegates to
``ruff check`` with the repo's ``pyproject.toml`` configuration.  The
fallback keeps the gate meaningful without any third-party dependency:

* **syntax** — every file must parse (``ast.parse``);
* **unused imports** — a bound import name that appears nowhere else in
  the file (string occurrences count, so ``__all__`` re-exports and
  doc references stay clean; ``# noqa`` lines are exempt);
* **debug leftovers** — ``breakpoint()`` / ``pdb.set_trace()``;
* **bare except** — ``except:`` without an exception class.

Exit code 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import ast
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _try_ruff(paths: list[str]) -> int | None:
    """Run ruff if present; None when ruff is not installed."""
    ruff = shutil.which("ruff")
    if ruff is not None:
        return subprocess.run([ruff, "check", *paths], cwd=REPO_ROOT).returncode
    probe = subprocess.run(
        [sys.executable, "-m", "ruff", "--version"], capture_output=True
    )
    if probe.returncode == 0:
        return subprocess.run(
            [sys.executable, "-m", "ruff", "check", *paths], cwd=REPO_ROOT
        ).returncode
    return None


def _iter_sources(paths: list[str]):
    for raw in paths:
        path = (REPO_ROOT / raw).resolve() if not Path(raw).is_absolute() else Path(raw)
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.py"))


def _import_bindings(tree: ast.AST):
    """Yield ``(lineno, bound_name)`` for every import binding."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                yield node.lineno, name
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                yield node.lineno, alias.asname or alias.name


def check_file(path: Path) -> list[str]:
    """Fallback checks for one file; returns human-readable findings."""
    rel = path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) else path
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [f"{rel}:{exc.lineno}: syntax error: {exc.msg}"]

    findings = []
    lines = source.splitlines()

    def line_is_noqa(lineno: int) -> bool:
        return 0 < lineno <= len(lines) and "noqa" in lines[lineno - 1]

    for lineno, name in _import_bindings(tree):
        # "annotations" = `from __future__ import annotations` (always used)
        if name in ("_", "annotations") or line_is_noqa(lineno):
            continue
        uses = len(re.findall(rf"\b{re.escape(name)}\b", source))
        # one occurrence = the import statement itself
        if uses <= 1:
            findings.append(f"{rel}:{lineno}: unused import {name!r}")

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id == "breakpoint":
                findings.append(f"{rel}:{node.lineno}: breakpoint() left in")
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr == "set_trace"
                and isinstance(fn.value, ast.Name)
                and fn.value.id == "pdb"
            ):
                findings.append(f"{rel}:{node.lineno}: pdb.set_trace() left in")
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            if not line_is_noqa(node.lineno):
                findings.append(f"{rel}:{node.lineno}: bare except")
    return findings


def main(argv: list[str] | None = None) -> int:
    paths = (argv if argv is not None else sys.argv[1:]) or [
        "src", "tests", "benchmarks"
    ]
    ruff_rc = _try_ruff(paths)
    if ruff_rc is not None:
        return ruff_rc

    findings: list[str] = []
    n_files = 0
    for path in _iter_sources(paths):
        n_files += 1
        findings.extend(check_file(path))
    if findings:
        print("\n".join(findings))
        print(f"lint (fallback): {len(findings)} finding(s) in "
              f"{n_files} file(s)", file=sys.stderr)
        return 1
    print(f"lint (fallback): {n_files} file(s) clean "
          f"(install ruff for the full rule set)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
