#!/usr/bin/env python
"""Smoke-check the persistent task-queue backend end-to-end.

Fast gate (wired into ``make test`` as ``make queue-smoke``) over the
queue subsystem's load-bearing invariants:

1. **task conservation** — on every execution (template conversion and
   native task graphs alike), ``tasks_enqueued == tasks_executed +
   tasks_cancelled``: no task is lost, duplicated, or double-counted by
   the counting-quiescence termination detector;
2. **asynchronous equivalence** — async BFS and SSSP fixpoints are
   bit-identical to the serial references, and the queue run of a
   high-diameter grid beats the launch-per-round BSP run;
3. **seam transparency** — ``repro.run(..., backend="queue")`` executes
   compatible templates on the queue (1 host launch, 0 device launches),
   routes the barrier-dependent ``dbuf-shared`` back to BSP with a
   bit-identical result, and leaves the default ``backend="sim"`` path
   untouched;
4. **termination accounting** — makespan == last-task-end + termination
   window, and the reported overhead fraction is positive and < 50%.

Exit code 0 = all checks passed.  Keep this under a few seconds.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

import repro  # noqa: E402
from repro.apps.asyncq import AsyncBFSApp, AsyncSSSPApp  # noqa: E402
from repro.core.workload import NestedLoopWorkload  # noqa: E402
from repro.gpusim.config import KEPLER_K20  # noqa: E402
from repro.graphs.generators import grid_graph  # noqa: E402
from repro.queue import QueueBackend, simulate  # noqa: E402


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def check_conservation(result, label: str) -> None:
    if result.tasks_enqueued != result.tasks_executed + result.tasks_cancelled:
        fail(
            f"{label}: task conservation broken — enqueued "
            f"{result.tasks_enqueued} != executed {result.tasks_executed} "
            f"+ cancelled {result.tasks_cancelled}"
        )


def main() -> None:
    rng = np.random.default_rng(13)
    trips = rng.zipf(1.6, size=256).clip(max=150).astype(np.int64)
    wl = NestedLoopWorkload("queue-smoke", trips)

    # 1. template path on the queue: conservation + single-launch shape
    qrun = repro.run(wl, "dbuf-global", backend="queue")
    check_conservation(qrun.result, "dbuf-global via queue")
    if qrun.result.n_launches != 1 or qrun.result.n_device_launches != 0:
        fail("queue execution must collapse to one persistent launch")

    # ... and for a dynamic-parallelism template (spawned tasks)
    dpar = repro.run(wl, "dpar-opt", backend="queue")
    check_conservation(dpar.result, "dpar-opt via queue")

    # 2. async equivalence + the high-diameter win
    grid = grid_graph(20, seed=1)
    for app_cls in (AsyncBFSApp, AsyncSSSPApp):
        app = app_cls(grid, source=0)
        if not np.array_equal(app.distances(), app.compute()):
            fail(f"{app.name}: async fixpoint != serial reference")
        native = QueueBackend(KEPLER_K20).submit_tasks(app.task_graph())
        check_conservation(native, f"{app.name} task graph")
        stale = app.log.n_requests - app.log.n_live
        if native.tasks_cancelled != stale:
            fail(f"{app.name}: cancelled {native.tasks_cancelled} != "
                 f"stale requests {stale}")
    bfs = AsyncBFSApp(grid, source=0)
    t_queue = bfs.run("queue").gpu_time_ms
    t_bsp = bfs.run("sim").gpu_time_ms
    if t_queue >= t_bsp:
        fail(f"high-diameter BFS: queue ({t_queue:.3f} ms) must beat "
             f"launch-per-round BSP ({t_bsp:.3f} ms)")

    # 3. seam transparency: fallback is bit-identical, default untouched
    ref = repro.run(wl, "dbuf-shared")
    via_queue = repro.run(wl, "dbuf-shared", backend="queue")
    if via_queue.result.cycles != ref.result.cycles:
        fail("dbuf-shared fallback must reproduce the BSP result exactly")
    if hasattr(via_queue.result, "tasks_enqueued"):
        fail("dbuf-shared fallback leaked a queue result type")
    again = repro.run(wl, "dbuf-shared")
    if again.result.cycles != ref.result.cycles:
        fail("default sim path changed after queue use")

    # 4. termination accounting
    stats = simulate(bfs.task_graph(), KEPLER_K20)
    decomposed = stats.last_task_end_cycles + stats.termination_cycles
    if abs(stats.makespan_cycles - decomposed) > 1e-6:
        fail("makespan must decompose into last-task-end + termination")
    overhead = stats.termination_cycles / stats.makespan_cycles
    if not (0.0 < overhead < 0.5):
        fail(f"termination overhead {overhead:.3f} outside (0, 0.5)")

    print(
        "queue smoke OK: conservation (template, dpar, async), "
        f"equivalence bit-exact, grid BFS queue {t_queue:.3f} ms vs "
        f"BSP {t_bsp:.3f} ms, termination overhead {overhead:.4f}"
    )


if __name__ == "__main__":
    main()
