#!/usr/bin/env python
"""Smoke-check the parallelization IR + auto-select layer end-to-end.

Fast gate (wired into ``make test`` as ``make ir-smoke``) over one
irregular nested loop and one recursive tree:

1. **golden decision table** — building the IR and running the pass
   pipeline must reproduce the expected promote/consolidate decisions
   (a split inner loop whose large side consolidates for the loop; both
   child loops demoted below the threshold for the tree) and the
   expected lowering (a load-balancing-family race for the loop, an
   unambiguous ``flat`` pick with no race for the tree);
2. **fingerprint stability** — re-deriving the selection from scratch
   (analysis + selection caches cleared) reproduces the same selection
   fingerprint, the property the disk-cache keys rely on;
3. **auto overhead** — with the selection cached, ``repro.run(workload)``
   must stay within 5% (plus a small absolute slack) of naming the
   selected template directly, measured as the median of repeated warm
   trials.

Exit code 0 = all checks passed.  Keep this under a few seconds.
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

import repro  # noqa: E402
from repro.core.analysis import clear_analysis_cache  # noqa: E402
from repro.core.recursive import RecursiveTreeWorkload  # noqa: E402
from repro.core.workload import NestedLoopWorkload  # noqa: E402
from repro.ir import auto_select, clear_selection_cache  # noqa: E402
from repro.trees.generator import generate_tree  # noqa: E402

TRIALS = 15
MAX_OVERHEAD = 0.05      # warm auto vs named, relative
ABS_SLACK_S = 0.002      # absolute timer-noise allowance per trial

#: expected (pass, node, action) rows per workload — the golden table
GOLDEN_DECISIONS = {
    "loop": [
        ("promote", "inner", "split"),
        ("consolidate", "inner@large", "consolidate-block"),
    ],
    "tree": [
        ("promote", "grandchildren", "demote-thread"),
        ("promote", "children", "demote-thread"),
    ],
}


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def build_workloads():
    rng = np.random.default_rng(11)
    loop = NestedLoopWorkload("ir-smoke-loop", rng.integers(0, 40, size=200))
    tree = RecursiveTreeWorkload(generate_tree(depth=5, outdegree=3, seed=3))
    return loop, tree


def check_decisions(tag: str, selection) -> None:
    table = [(d.pass_name, d.node, d.action) for d in selection.decisions]
    if table != GOLDEN_DECISIONS[tag]:
        fail(f"{tag}: decision table {table} != golden {GOLDEN_DECISIONS[tag]}")


def check_loop(loop) -> None:
    selection = auto_select(loop)
    check_decisions("loop", selection)
    if selection.template not in ("dual-queue", "dbuf-global", "dbuf-shared"):
        fail(f"loop: expected a load-balancing pick, got {selection.template}")
    if len(selection.raced) != 12:
        fail(f"loop: expected a 12-candidate race, got {selection.raced}")
    if selection.params.lb_threshold not in (32, 64, 128, 256):
        fail(f"loop: winner threshold {selection.params.lb_threshold} "
             "outside the ladder")
    print(f"loop ok: {selection.template} "
          f"(lbTHRES={selection.params.lb_threshold}) "
          f"from {len(selection.raced)} candidates")


def check_tree(tree) -> None:
    selection = auto_select(tree)
    check_decisions("tree", selection)
    if selection.template != "flat":
        fail(f"tree: expected flat, got {selection.template}")
    if selection.raced:
        fail(f"tree: expected an unambiguous pick, raced {selection.raced}")
    print(f"tree ok: {selection.template} picked without a race")


def check_fingerprint_stability(loop) -> None:
    first = auto_select(loop).fingerprint
    clear_selection_cache()
    clear_analysis_cache()
    second = auto_select(loop).fingerprint
    if first != second:
        fail(f"selection fingerprint unstable: {first} != {second}")
    print(f"fingerprint ok: {first}")


def median_wall_s(fn) -> float:
    fn()  # warm every cache the path touches
    samples = []
    for _ in range(TRIALS):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def check_overhead(loop) -> None:
    selection = auto_select(loop)
    auto_s = median_wall_s(lambda: repro.run(loop))
    named_s = median_wall_s(
        lambda: repro.run(loop, selection.template, params=selection.params))
    budget = named_s * (1 + MAX_OVERHEAD) + ABS_SLACK_S
    if auto_s > budget:
        fail(f"warm auto run {auto_s * 1e3:.3f} ms exceeds "
             f"{budget * 1e3:.3f} ms budget "
             f"(named {named_s * 1e3:.3f} ms + 5% + slack)")
    print(f"overhead ok: auto {auto_s * 1e3:.3f} ms vs "
          f"named {named_s * 1e3:.3f} ms (warm medians)")


def main() -> int:
    clear_selection_cache()
    loop, tree = build_workloads()
    check_loop(loop)
    check_tree(tree)
    check_fingerprint_stability(loop)
    check_overhead(loop)
    print("ir smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
