#!/usr/bin/env python
"""Smoke-check multi-device execution end-to-end.

Fast gate (wired into ``make test`` as ``make multidevice-smoke``) over
the two workload families, comparing a 1-device run against a 4-device
run of the same app workload:

1. **work conservation** — the merged schedule covers every outer
   iteration exactly once, and the per-device work counters
   (``device.<i>.outer`` / ``.pairs`` for loops, ``.nodes`` for trees)
   sum exactly to the single-device totals;
2. **merge semantics** — merged simulated time is the max over devices
   (concurrent execution), aggregate busy cycles are the sum, and the
   4-device run is actually faster than the 1-device run;
3. **devices=1 transparency** — ``repro.run(..., devices=1)`` is
   bit-for-bit identical to the plain single-device call.

Exit code 0 = all checks passed.  Keep this under a few seconds.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

import repro  # noqa: E402
from repro import obs  # noqa: E402
from repro.apps import SpMVApp  # noqa: E402
from repro.core.recursive import RecursiveTreeWorkload  # noqa: E402
from repro.graphs import citeseer_like  # noqa: E402
from repro.trees.generator import generate_tree  # noqa: E402

DEVICES = 4


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_with_counters(template: str, workload, devices: int):
    obs.reset()
    obs.set_enabled(True)
    try:
        run = repro.run(workload, template, devices=devices)
        counters = dict(obs.summary()["counters"])
    finally:
        obs.set_enabled(False)
        obs.reset()
    return run, counters


def device_sum(counters: dict, suffix: str) -> int:
    return sum(v for k, v in counters.items()
               if k.startswith("device.") and k.endswith(suffix))


def check_loop_app() -> None:
    workload = SpMVApp(citeseer_like(scale=0.05)).workload()
    single, _ = run_with_counters("dbuf-global", workload, devices=1)
    multi, counters = run_with_counters("dbuf-global", workload,
                                        devices=DEVICES)

    if multi.device_runs is None or len(multi.device_runs) != DEVICES:
        fail(f"expected {DEVICES} device runs, got {multi.device_runs}")

    covered = np.sort(np.concatenate(list(multi.schedule.values())))
    if not np.array_equal(covered, np.arange(workload.outer_size)):
        fail("merged schedule does not cover the workload exactly once")

    outer = device_sum(counters, ".outer")
    pairs = device_sum(counters, ".pairs")
    if outer != workload.outer_size:
        fail(f"device outer counters sum to {outer}, "
             f"expected {workload.outer_size}")
    if pairs != workload.n_pairs:
        fail(f"device pair counters sum to {pairs}, "
             f"expected {workload.n_pairs}")

    per_dev = [r.result.time_ms for r in multi.device_runs]
    if abs(multi.result.time_ms - max(per_dev)) > 1e-9:
        fail(f"merged time {multi.result.time_ms} != max(per-device) "
             f"{max(per_dev)}")
    busy = sum(r.result.sm_busy_cycles for r in multi.device_runs)
    if multi.result.sm_busy_cycles != busy:
        fail("merged busy cycles are not the per-device sum")
    if multi.result.time_ms >= single.result.time_ms:
        fail(f"{DEVICES}-device run not faster: {multi.result.time_ms} "
             f"vs {single.result.time_ms} ms")

    baseline = repro.run(workload, "dbuf-global")
    if baseline.result.cycles != single.result.cycles:
        fail("devices=1 diverged from the plain single-device run")

    print(f"spmv ok: {workload.outer_size} rows / {workload.n_pairs} nnz "
          f"partitioned across {DEVICES} devices, "
          f"{single.result.time_ms / multi.result.time_ms:.2f}x faster")


def check_tree_app() -> None:
    workload = RecursiveTreeWorkload(
        generate_tree(depth=9, outdegree=3, sparsity=0.3, seed=5))
    single, _ = run_with_counters("rec-naive", workload, devices=1)
    multi, counters = run_with_counters("rec-naive", workload,
                                        devices=DEVICES)

    if multi.device_runs is None or len(multi.device_runs) < 2:
        fail("tree workload did not shard")

    # per-shard node counters exclude each shard's synthetic root, so
    # they must sum to the original tree's non-root nodes exactly
    nodes = device_sum(counters, ".nodes")
    if nodes != workload.tree.n_nodes - 1:
        fail(f"device node counters sum to {nodes}, "
             f"expected {workload.tree.n_nodes - 1} non-root nodes")

    if multi.result.time_ms >= single.result.time_ms:
        fail(f"{DEVICES}-device tree run not faster: "
             f"{multi.result.time_ms} vs {single.result.time_ms} ms")

    print(f"tree ok: {workload.tree.n_nodes} nodes across "
          f"{len(multi.device_runs)} devices, "
          f"{single.result.time_ms / multi.result.time_ms:.2f}x faster")


def check_stealing() -> None:
    """Work-stealing mode: same coverage guarantees, steals counted."""
    from repro.backends import DeviceGroup
    from repro.core.params import TemplateParams
    from repro.core.registry import resolve
    from repro.gpusim.config import KEPLER_K20

    workload = SpMVApp(citeseer_like(scale=0.05)).workload()
    group = DeviceGroup(n_devices=DEVICES, steal_chunks=4)
    tmpl = resolve("dbuf-global", kind="nested-loop")
    run = tmpl.run(workload, KEPLER_K20, TemplateParams(), executor=group)

    covered = np.sort(np.concatenate(list(run.schedule.values())))
    if not np.array_equal(covered, np.arange(workload.outer_size)):
        fail("stealing run's schedule does not cover the workload once")
    if len(run.device_runs) <= DEVICES:
        fail(f"stealing run did not over-shard: "
             f"{len(run.device_runs)} chunks for {DEVICES} devices")
    if run.result.steals != group.steals:
        fail(f"result steals ({run.result.steals}) != "
             f"group steals ({group.steals})")
    print(f"stealing ok: {len(run.device_runs)} chunks over {DEVICES} "
          f"devices, {run.result.steals} steals")


def check_serving_group() -> None:
    """Serving tier on a device group: balanced books, zero underflows."""
    from repro.service import serve

    workload = SpMVApp(citeseer_like(scale=0.05)).workload()
    with serve(devices=DEVICES, workers=1, max_batch=4,
               batch_window_s=0.001) as svc:
        for _ in range(8):
            response = svc.request("thread-mapped", workload)
            if not response.ok:
                fail(f"serving request failed: {response.reason}")
        stats = svc.stats()
    devices = stats.get("devices")
    if devices is None or devices["devices"] != DEVICES:
        fail(f"service snapshot missing the {DEVICES}-device group")
    # double-release masking is gone: every complete() matched an acquire
    if devices["release_underflows"] != 0:
        fail(f"device group counted {devices['release_underflows']} "
             f"release underflows (double releases)")
    if any(d["inflight"] != 0 for d in devices["per_device"]):
        fail(f"devices still show in-flight work after drain: {devices}")
    print(f"serving ok: 8 requests over {DEVICES} devices, "
          f"0 release underflows")


def main() -> int:
    check_loop_app()
    check_tree_app()
    check_stealing()
    check_serving_group()
    print("multidevice smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
