#!/usr/bin/env python
"""Smoke-check fused batch execution end-to-end.

Fast gate (wired into ``make test`` as ``make fuse-smoke``) over the
batch-fusion invariants:

1. **bit-exact demux** — ``execute_fused`` over a mixed batch (different
   workloads, templates, block-mapped and dynamic-parallelism graphs)
   returns results field-for-field identical to sequential
   ``GpuExecutor.run`` calls, including every profile counter;
2. **degenerate shapes** — an empty batch, a singleton batch, and empty
   graphs interleaved with real ones demux at their original positions;
3. **placement-path agreement** — forcing the merge-path vectorized
   placement on and off produces identical results (the two placement
   code paths may only differ in speed, never in outcome);
4. **backend seam** — ``SimBackend.submit_many`` matches per-graph
   ``submit`` and accounts every graph (submissions, busy_ms);
5. **fusion observability** — a traced fused pass emits the
   ``executor.fused_graphs`` counter.

Exit code 0 = all checks passed.  Keep this under a few seconds.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro import obs  # noqa: E402
from repro.backends import SimBackend  # noqa: E402
from repro.core import (  # noqa: E402
    AccessStream,
    NestedLoopWorkload,
    RecursiveTreeWorkload,
    TemplateParams,
)
from repro.core.registry import resolve  # noqa: E402
from repro.gpusim import KEPLER_K20, GpuExecutor, execute_fused  # noqa: E402
from repro.gpusim import executor as executor_mod  # noqa: E402
from repro.gpusim.kernels import LaunchGraph  # noqa: E402
from repro.trees.generator import generate_tree  # noqa: E402

#: templates the smoke batch spans — thread/block mapping, double
#: buffering, and both dynamic-parallelism variants, plus a tree template
TEMPLATES = [
    "thread-mapped",
    "dual-queue",
    "dbuf-global",
    "dpar-naive",
    "dpar-opt",
]


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def check_equal(got, want, label: str) -> None:
    for field in ("cycles", "time_ms", "sm_busy_cycles", "sm_count",
                  "n_launches", "n_device_launches", "pool_overflows"):
        a, b = getattr(got, field), getattr(want, field)
        if a != b:
            fail(f"{label}: {field} diverged — fused {a!r} vs sequential {b!r}")
    if got.counters != want.counters:
        fail(f"{label}: profile counters diverged")


def build_batch():
    rng = np.random.default_rng(23)
    graphs, labels = [], []
    for seed, shape in enumerate(("power", "hot")):
        if shape == "power":
            trips = rng.zipf(1.8, size=500).clip(max=300).astype(np.int64)
        else:
            trips = np.full(500, 2, dtype=np.int64)
            trips[97] = 1500
        nnz = int(trips.sum())
        wl = NestedLoopWorkload(
            name=f"fuse-smoke-{shape}", trip_counts=trips,
            streams=[
                AccessStream("seq", np.arange(nnz, dtype=np.int64) * 4),
                AccessStream("gather", rng.integers(0, nnz, size=nnz) * 4),
            ],
        )
        for name in TEMPLATES:
            built = resolve(name).build(wl, KEPLER_K20, TemplateParams())
            graphs.append(built[0] if isinstance(built, tuple) else built)
            labels.append(f"{name}/{shape}")
    tree = generate_tree(depth=6, outdegree=4, sparsity=0.5, seed=9)
    twl = RecursiveTreeWorkload(tree, "descendants")
    built = resolve("rec-hier").build(twl, KEPLER_K20, TemplateParams())
    graphs.append(built[0] if isinstance(built, tuple) else built)
    labels.append("rec-hier/descendants")
    return graphs, labels


def main() -> None:
    graphs, labels = build_batch()
    executor = GpuExecutor(KEPLER_K20, engine="fast")
    sequential = [executor.run(g) for g in graphs]

    # 1. bit-exact demux over the mixed batch
    fused = execute_fused(graphs, KEPLER_K20, engine="fast")
    if len(fused) != len(graphs):
        fail(f"fused returned {len(fused)} results for {len(graphs)} graphs")
    for label, got, want in zip(labels, fused, sequential):
        check_equal(got, want, label)
    if not any(r.n_device_launches > 0 for r in fused):
        fail("smoke batch exercised no device-side launches")
    print(f"fused == sequential on {len(graphs)} mixed graphs")

    # 2. degenerate shapes
    if execute_fused([], KEPLER_K20) != []:
        fail("empty batch did not return []")
    (single,) = execute_fused([graphs[0]], KEPLER_K20, engine="fast")
    check_equal(single, sequential[0], "singleton batch")
    mixed = execute_fused([LaunchGraph(), graphs[1], LaunchGraph()],
                          KEPLER_K20, engine="fast")
    if mixed[0].n_launches != 0 or mixed[2].n_launches != 0:
        fail("empty graphs lost their zero results in a mixed batch")
    check_equal(mixed[1], sequential[1], "empty-graph interleave")
    print("degenerate batches demux correctly")

    # 3. vectorized vs serial placement
    saved = (executor_mod._VECTOR_MIN_BLOCKS, executor_mod._VECTOR_MIN_SLOTS)
    try:
        executor_mod._VECTOR_MIN_BLOCKS = 1
        executor_mod._VECTOR_MIN_SLOTS = 1
        vectorized = execute_fused(graphs, KEPLER_K20, engine="fast")
        executor_mod._VECTOR_MIN_BLOCKS = 10**9
        executor_mod._VECTOR_MIN_SLOTS = 10**9
        serial = execute_fused(graphs, KEPLER_K20, engine="fast")
    finally:
        executor_mod._VECTOR_MIN_BLOCKS, executor_mod._VECTOR_MIN_SLOTS = saved
    for label, a, b in zip(labels, vectorized, serial):
        check_equal(a, b, f"vector-vs-serial {label}")
    print("vectorized placement == serial placement")

    # 4. backend seam + accounting
    backend = SimBackend(KEPLER_K20, engine="fast")
    results = backend.submit_many(graphs)
    for label, got, want in zip(labels, results, sequential):
        check_equal(got, want, f"submit_many {label}")
    if backend.submissions != len(graphs):
        fail(f"submit_many accounted {backend.submissions} of {len(graphs)}")
    want_busy = sum(r.time_ms for r in sequential)
    if abs(backend.busy_ms - want_busy) > 1e-9 * max(want_busy, 1.0):
        fail(f"busy_ms {backend.busy_ms} != sequential total {want_busy}")
    print("SimBackend.submit_many matches submit with full accounting")

    # 5. fused pass is observable
    obs.reset()
    obs.set_enabled(True)
    try:
        execute_fused(graphs[:4], KEPLER_K20, engine="fast")
        counters = obs.summary().get("counters", {})
    finally:
        obs.set_enabled(False)
        obs.reset()
    if counters.get("executor.fused_graphs", 0) < 4:
        fail(f"executor.fused_graphs not emitted: {counters}")
    print("traced fused pass emits executor.fused_graphs")

    print("fuse smoke OK")


if __name__ == "__main__":
    main()
