#!/usr/bin/env python
"""Smoke-check the tracing layer and the accounting invariants.

Fast end-to-end gate (wired into ``make test`` as ``make trace-smoke``):

1. runs one nested-loop and one tree workload with ``repro.obs`` enabled
   and validates the emitted Chrome trace — JSON schema, the required
   span names (plan build, per-kernel execution, profiling), and a
   non-empty simulated-device track;
2. drives a small request mix through ``repro.serve`` with tracing on and
   checks that the service and pool books balance
   (``submitted == served + admission_rejected`` etc.) and that the
   request-lifecycle spans landed in the trace;
3. re-runs step 1's workload with tracing disabled and asserts nothing
   was recorded (the zero-cost-off contract ``make bench-smoke`` relies
   on).

Exit code 0 = all checks passed.  Keep this under a few seconds.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

import repro  # noqa: E402
from repro import obs  # noqa: E402
from repro.core.plancache import default_cache  # noqa: E402
from repro.core.recursive import RecursiveTreeWorkload  # noqa: E402
from repro.core.workload import AccessStream, NestedLoopWorkload  # noqa: E402
from repro.service.handle import serve  # noqa: E402
from repro.trees.generator import generate_tree  # noqa: E402

REQUIRED_SPANS = (
    "plan.build",
    "gpusim.execute",
    "gpusim.profile",
    "bench.unit",  # stands in for the runner's unit span (emitted below)
)


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def make_workload(outer=500, seed=13):
    rng = np.random.default_rng(seed)
    trips = rng.zipf(1.8, size=outer).clip(max=80).astype(np.int64)
    nnz = int(trips.sum())
    return NestedLoopWorkload(
        name="trace-smoke", trip_counts=trips,
        streams=[AccessStream("x", rng.integers(0, nnz, size=nnz) * 4)],
    )


def check_template_trace() -> None:
    default_cache().clear()  # plan.build must actually fire
    obs.reset()
    obs.set_enabled(True)
    with obs.span("bench.unit", experiment="trace-smoke"):
        repro.run(make_workload(), "dbuf-shared")
        tree = RecursiveTreeWorkload(
            generate_tree(depth=4, outdegree=3, seed=9), "descendants")
        repro.run(tree, "rec-hier")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.json"
        obs.write_chrome_trace(path)
        trace = json.loads(path.read_text())
    obs.set_enabled(False)

    count = obs.validate_chrome_trace(trace, required_names=REQUIRED_SPANS)
    sim = [e for e in trace["traceEvents"] if e.get("cat") == "sim"]
    if not sim:
        fail("no simulated-device (per-kernel) events in the trace")
    if any(e["pid"] != obs.SIM_PID for e in sim):
        fail("simulated events leaked off the synthetic device pid")
    summary = obs.summary()
    if summary["wall_ms"]["plan.build"]["count"] != 2:
        fail(f"expected 2 plan builds, saw {summary['wall_ms']['plan.build']}")
    print(f"template trace ok: {count} events, "
          f"{len(sim)} on the simulated track")


def check_service_invariants() -> None:
    obs.reset()
    obs.set_enabled(True)
    workload = make_workload(outer=400, seed=21)
    with serve(max_batch=8, batch_window_s=0.001) as svc:
        for _ in range(6):
            response = svc.request("dual-queue", workload)
            if not response.ok:
                fail(f"smoke request failed: {response.reason}")
        stats = svc.stats()
    obs.set_enabled(False)

    requests = stats["requests"]
    if requests["submitted"] != requests["served"] \
            + requests["admission_rejected"]:
        fail(f"service books do not balance: {requests}")
    terminal = requests["succeeded"] + requests["failed"] \
        + requests["drain_rejected"] + requests["shed"]
    if requests["served"] != terminal:
        fail(f"served != terminal statuses: {requests}")
    pool = stats["pool"]
    settled = pool["completed"] + pool["crashes"] + pool["timeouts"] \
        + pool["failures"]
    if pool["submitted"] != settled:
        fail(f"pool books do not balance: {pool}")
    if "obs" not in stats:
        fail("service snapshot is missing the obs summary while tracing")
    lifecycle = stats["obs"]["wall_ms"].get("service.request", {})
    if lifecycle.get("count") != 6:
        fail(f"expected 6 service.request spans, saw {lifecycle}")
    print(f"service invariants ok: {requests['served']} served, "
          f"{lifecycle['count']} lifecycle spans")


def check_disabled_is_silent() -> None:
    obs.reset()
    repro.run(make_workload(seed=5), "dual-queue")
    summary = obs.summary()
    if summary["events"] or summary["sim_events"] or summary["counters"]:
        fail(f"tracing disabled but the tracer recorded: {summary}")
    print("zero-cost-off ok: nothing recorded while disabled")


def main() -> int:
    check_template_trace()
    check_service_invariants()
    check_disabled_is_silent()
    print("trace smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
