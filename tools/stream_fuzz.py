#!/usr/bin/env python
"""Differential fuzz of streaming workload mutations.

Fast gate (wired into ``make test`` as ``make stream-smoke``) over the
incremental-analysis contract (docs/streaming.md): for random workloads
under random mutation streams,

1. **bit-identity** — after every mutation step the incrementally
   maintained :class:`~repro.core.analysis.WorkloadAnalysis` (delta
   replay through ``get_analysis``) is *bit-identical* to a from-scratch
   analysis of the mutated workload: sorted order, sorted trips, trip
   histogram (values, frequencies, and dtypes), per-stream segment ids,
   and the memoized threshold partitions / split counts;
2. **in-place == functional** — ``apply_mutations`` (the in-place form)
   and ``mutated`` (the snapshot form) produce identical arrays and the
   same fingerprint for the same batch;
3. **template equivalence** — every nested-loop template in the registry
   produces cycle-identical results on the mutated workload whether its
   analysis came from delta replay or from scratch;
4. **the incremental path actually ran** — ``analysis.incremental_hits``
   advanced (the fuzz would silently pass if every step fell back).

Exit code 0 = all checks passed across all seeds.  Keep this under a few
seconds: sizes are smoke-scale, coverage comes from seeds x steps.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

import repro  # noqa: E402
from repro.core import analysis as analysis_mod  # noqa: E402
from repro.core.analysis import (  # noqa: E402
    WorkloadAnalysis,
    analysis_stats,
    clear_analysis_cache,
    get_analysis,
)
from repro.core.artifactcache import configure_artifact_cache  # noqa: E402
from repro.core.mutation import MutationBatch, PairInserts  # noqa: E402
from repro.core.registry import NESTED_LOOP_TEMPLATES  # noqa: E402
from repro.core.workload import AccessStream, NestedLoopWorkload  # noqa: E402

THRESHOLDS = (0, 1, 2, 4, 8, 64)


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def random_workload(rng: np.random.Generator, seed: int) -> NestedLoopWorkload:
    n = int(rng.integers(96, 192))
    trips = rng.zipf(1.7, size=n).clip(max=80).astype(np.int64)
    trips[rng.random(n) < 0.15] = 0  # empty rows are a real streaming state
    nnz = int(trips.sum())
    return NestedLoopWorkload(
        name=f"fuzz-{seed}",
        trip_counts=trips,
        streams=[
            AccessStream("a", rng.integers(0, 1 << 20, nnz) * 4, "load", 4),
            AccessStream("b", rng.integers(0, 1 << 20, nnz) * 8, "load", 8),
        ],
        atomic_targets=rng.integers(-1, n, nnz),
    )


def random_batch(rng: np.random.Generator, wl: NestedLoopWorkload) -> MutationBatch:
    n, nnz = wl.outer_size, wl.n_pairs
    delete = None
    if nnz and rng.random() < 0.7:
        k = int(rng.integers(1, max(2, nnz // 10)))
        delete = rng.choice(nnz, size=min(k, nnz), replace=False)
    isolate = None
    if rng.random() < 0.3:
        isolate = rng.choice(n, size=int(rng.integers(1, 3)), replace=False)
    append = int(rng.integers(0, 3)) if rng.random() < 0.4 else 0
    inserts = None
    if rng.random() < 0.8:
        k = int(rng.integers(1, 13))
        rows = rng.integers(0, n + append, k)
        inserts = PairInserts(
            outer_ids=rows,
            stream_addresses=[rng.integers(0, 1 << 20, k) * 4,
                              rng.integers(0, 1 << 20, k) * 8],
            atomic_targets=rng.integers(-1, n + append, k),
        )
    batch = MutationBatch(inserts=inserts, delete_pairs=delete,
                          isolate_outer=isolate, append_outer=append)
    if batch.is_empty():  # degenerate roll: force a minimal insert
        batch = MutationBatch(inserts=PairInserts(
            outer_ids=np.array([int(rng.integers(0, n))]),
            stream_addresses=[np.array([4]), np.array([8])],
            atomic_targets=np.array([-1]),
        ))
    return batch


def check_bit_identity(inc: WorkloadAnalysis, wl: NestedLoopWorkload,
                       label: str) -> None:
    scratch = WorkloadAnalysis.from_workload(wl)
    if inc.fingerprint != scratch.fingerprint:
        fail(f"{label}: fingerprint mismatch")
    pairs = [
        ("order", inc.order, scratch.order),
        ("sorted_trips", inc.sorted_trips, scratch.sorted_trips),
        ("trip_values", inc.trip_values, scratch.trip_values),
        ("trip_freqs", inc.trip_freqs, scratch.trip_freqs),
    ]
    for s in range(len(wl.streams)):
        pairs.append((f"segments[{s}]", inc.stream_segments(s),
                      scratch.stream_segments(s)))
    for thr in THRESHOLDS:
        for side, a, b in zip(("small", "large"), inc.partition(thr),
                              scratch.partition(thr)):
            pairs.append((f"partition({thr}).{side}", a, b))
        if inc.split_counts(thr) != scratch.split_counts(thr):
            fail(f"{label}: split_counts({thr}) diverged")
    for name, a, b in pairs:
        if a.dtype != b.dtype or not np.array_equal(a, b):
            fail(f"{label}: {name} not bit-identical "
                 f"(incremental {a.dtype}{a.shape} vs scratch {b.dtype}{b.shape})")


def fuzz_seed(seed: int, steps: int) -> tuple[int, int]:
    rng = np.random.default_rng(seed)
    wl = random_workload(rng, seed)
    twin = random_workload(np.random.default_rng(seed), seed)  # for in-place==functional
    clear_analysis_cache(reset_stats=True)
    get_analysis(wl)  # warm the base analysis the deltas chain from

    for step in range(steps):
        batch = random_batch(rng, wl)
        snapshot, fdelta = twin.mutated(batch)
        delta = wl.apply_mutations(batch)
        label = f"seed {seed} step {step}"
        if delta.fingerprint != fdelta.fingerprint:
            fail(f"{label}: in-place and functional fingerprints diverged")
        if not (np.array_equal(wl.trip_counts, snapshot.trip_counts)
                and all(np.array_equal(a.addresses, b.addresses)
                        for a, b in zip(wl.streams, snapshot.streams))
                and np.array_equal(wl.atomic_targets, snapshot.atomic_targets)):
            fail(f"{label}: in-place and functional arrays diverged")
        twin = snapshot
        check_bit_identity(get_analysis(wl), wl, label)

    stats = analysis_stats()
    inc_hits = stats.get("incremental_hits", 0)
    if inc_hits == 0:
        fail(f"seed {seed}: incremental path never taken "
             f"(every step fell back to rebuild) — stats {stats}")

    # template equivalence: incremental-analysis run vs cold from-scratch run
    warm = {name: repro.run(wl, name).result.cycles
            for name in NESTED_LOOP_TEMPLATES}
    clear_analysis_cache()
    wl.lineage.clear()  # force the cold path to re-analyze, not replay
    for name, cycles in warm.items():
        cold = repro.run(wl, name).result.cycles
        if cold != cycles:
            fail(f"seed {seed}: template {name} cycles diverged — "
                 f"incremental {cycles} vs from-scratch {cold}")
    return inc_hits, stats.get("delta_fallbacks", 0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=6,
                        help="number of fuzz seeds (default 6)")
    parser.add_argument("--steps", type=int, default=10,
                        help="mutation steps per seed (default 10)")
    args = parser.parse_args()
    if args.seeds < 5:
        fail("--seeds must be >= 5 (the gate's minimum coverage)")

    configure_artifact_cache(None)  # keep the fuzz hermetic: no disk reuse
    total_hits = total_fallbacks = 0
    for seed in range(args.seeds):
        hits, fallbacks = fuzz_seed(seed, args.steps)
        total_hits += hits
        total_fallbacks += fallbacks
    print(
        f"stream fuzz OK: {args.seeds} seeds x {args.steps} steps, "
        f"{len(NESTED_LOOP_TEMPLATES)} templates cycle-identical, "
        f"{total_hits} incremental hits, {total_fallbacks} rebuild fallbacks, "
        f"analysis bit-identity held at every step"
    )


if __name__ == "__main__":
    main()
