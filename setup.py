"""Setup shim: enables `pip install -e .` on offline environments whose
setuptools lacks the `wheel` package required by the PEP-517 editable path.
All project metadata lives in pyproject.toml."""
from setuptools import setup

setup()
