#!/usr/bin/env python
"""Recursive tree traversals: flat vs rec-naive vs rec-hier (Figs. 7/8).

Generates synthetic trees with the paper's (depth, outdegree, sparsity)
parameters and shows the crossover the paper reports: the flat kernel
saturates on hot-root atomics as outdegree grows, while the hierarchical
recursive template keeps scaling; the naive recursive template drowns in
tiny nested launches at every size.

Run:  python examples/tree_traversal.py
"""

from repro.apps import TreeDescendantsApp
from repro.gpusim import KEPLER_K20
from repro.trees import generate_tree, rec_hier_kernel_calls, rec_naive_kernel_calls


def main() -> None:
    print("Tree Descendants, depth-4 regular trees (sparsity = 0)\n")
    header = (f"{'outdeg':>6s} {'nodes':>8s} | {'flat':>8s} {'rec-naive':>10s} "
              f"{'rec-hier':>9s} | {'naive kcalls':>12s} {'hier kcalls':>11s}")
    print(header)
    print("-" * len(header))
    for outdegree in (8, 16, 32, 64):
        tree = generate_tree(depth=4, outdegree=outdegree, sparsity=0.0)
        app = TreeDescendantsApp(tree)
        speed = {t: app.run(t, KEPLER_K20).speedup
                 for t in ("flat", "rec-naive", "rec-hier")}
        print(f"{outdegree:6d} {tree.n_nodes:8d} | "
              f"{speed['flat']:7.2f}x {speed['rec-naive']:9.3f}x "
              f"{speed['rec-hier']:8.2f}x | "
              f"{rec_naive_kernel_calls(tree):12d} "
              f"{rec_hier_kernel_calls(tree):11d}")

    print("\nNow hold outdegree at 64 and make the tree irregular:\n")
    for sparsity in (0.0, 2.0, 4.0):
        tree = generate_tree(depth=4, outdegree=64, sparsity=sparsity, seed=1)
        app = TreeDescendantsApp(tree)
        hier = app.run("rec-hier", KEPLER_K20)
        flat = app.run("flat", KEPLER_K20)
        print(f"  sparsity={sparsity:g}: {tree.n_nodes:7d} nodes | "
              f"flat {flat.speedup:6.2f}x (warp "
              f"{flat.metrics.warp_execution_efficiency:5.1%}) | "
              f"rec-hier {hier.speedup:6.2f}x (warp "
              f"{hier.metrics.warp_execution_efficiency:5.1%})")

    print("\nSpeedups are over the better of the recursive/iterative serial")
    print("CPU implementations, as in the paper's Figs. 7-8.")


if __name__ == "__main__":
    main()
