#!/usr/bin/env python
"""Quickstart: run one irregular workload under every template.

This is the 5-minute tour of the library: build a synthetic CiteSeer-like
graph, wrap SpMV over it, and compare the paper's parallelization
templates on the simulated K20 with the one-call facade —
``repro.run(workload)`` auto-selects a template; ``repro.compare(workload,
names)`` races named ones — reporting timing, warp efficiency and memory
efficiency, exactly the metrics the paper reports.

Run:  python examples/quickstart.py
"""

import repro
from repro.apps import SpMVApp
from repro.core import TemplateParams
from repro.core.registry import ALL_TEMPLATES
from repro.gpusim import KEPLER_K20
from repro.graphs import citeseer_like, degree_stats


def main() -> None:
    graph = citeseer_like(scale=0.03, seed=0)
    print(f"dataset: {degree_stats(graph)}")
    print(f"device:  {KEPLER_K20.name}\n")

    workload = SpMVApp(graph).workload()
    params = TemplateParams(lb_threshold=32)
    names = [n for n, (kind, _) in ALL_TEMPLATES.items() if kind == "nested-loop"]
    runs = repro.compare(workload, names, device=KEPLER_K20, params=params)

    header = (f"{'template':13s} {'time [ms]':>10s} {'speedup':>8s} "
              f"{'warp eff':>9s} {'gld eff':>8s} {'kernels':>8s}")
    print(header)
    print("-" * len(header))
    baseline_ms = runs[0].time_ms
    for name, run in zip(names, runs):
        rel = baseline_ms / run.time_ms
        m = run.metrics
        print(f"{name:13s} {run.time_ms:10.3f} {rel:7.2f}x "
              f"{m.warp_execution_efficiency:8.1%} {m.gld_efficiency:7.1%} "
              f"{m.kernel_calls:8d}")

    print("\nThe paper's story in one table: the thread-mapped baseline")
    print("wastes most of each warp on the irregular inner loops; the")
    print("load-balancing templates fix the divergence AND coalesce the")
    print("adjacency loads; dpar-naive drowns in nested-launch overhead.")


if __name__ == "__main__":
    main()
