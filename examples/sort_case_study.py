#!/usr/bin/env python
"""The Fig. 2 sort case study: when dynamic parallelism loses.

The CUDA SDK ships two recursive quicksorts built on nested kernel
launches; the paper uses them to show that a flat kernel can beat naive
dynamic parallelism outright.  This example sorts arrays of increasing
size under all three implementations and prints launch counts alongside
times — the launch counts *are* the explanation.

Run:  python examples/sort_case_study.py
"""

import numpy as np

from repro.apps import SORT_VARIANTS, SortApp
from repro.gpusim import KEPLER_K20, estimate_bulk_overhead


def main() -> None:
    rng = np.random.default_rng(0)
    print(f"{'n':>9s} | " + " | ".join(f"{v:>22s}" for v in SORT_VARIANTS))
    print("-" * 85)
    for n in (50_000, 100_000, 200_000, 400_000):
        app = SortApp(rng.integers(0, 1 << 31, size=n))
        cells = []
        for variant in SORT_VARIANTS:
            run = app.run(variant, KEPLER_K20)
            cells.append(f"{run.time_ms:9.2f} ms /{run.kernel_calls:6d}k")
        print(f"{n:9d} | " + " | ".join(f"{c:>22s}" for c in cells))

    print("\nWhy simple quicksort loses: launch machinery alone costs")
    for launches in (500, 2000, 8000):
        est = estimate_bulk_overhead(KEPLER_K20, launches)
        flag = "  (pending-launch pool overflow!)" if est.pool_overflow else ""
        print(f"  {launches:5d} nested launches -> "
              f">= {est.total_us_lower_bound / 1000:6.2f} ms{flag}")
    print("\n...before any sorting happens. MergeSort does ~20 flat passes.")


if __name__ == "__main__":
    main()
