#!/usr/bin/env python
"""Sweeping lbTHRES: the dominant tuning knob (Figs. 4-6 and Table II).

"The optimal load balancing threshold will depend on the underlying
dataset and algorithm" — this example sweeps lbTHRES for one application
and reports the timing and warp-efficiency curves, then picks the best
(template, threshold) combination, the selection a template-emitting
compiler would make.

Run:  python examples/autotune_threshold.py
"""

from repro.apps import SpMVApp
from repro.core import LOAD_BALANCING_TEMPLATES, TemplateParams
from repro.core.autotune import autotune
from repro.gpusim import KEPLER_K20
from repro.graphs import citeseer_like


def main() -> None:
    graph = citeseer_like(scale=0.02, seed=0)
    app = SpMVApp(graph)
    base = app.run("baseline", KEPLER_K20)
    print(f"baseline: {base.gpu_time_ms:.3f} ms "
          f"(warp eff {base.metrics.warp_execution_efficiency:.1%})\n")

    print(f"{'lbTHRES':>8s} | " + " | ".join(
        f"{t:>12s}" for t in ("dbuf-shared", "dbuf-global", "dual-queue")))
    for lbt in (32, 64, 128, 256, 1024):
        row = []
        for tmpl in ("dbuf-shared", "dbuf-global", "dual-queue"):
            run = app.run(tmpl, KEPLER_K20, TemplateParams(lb_threshold=lbt))
            row.append(f"{base.gpu_time_ms / run.gpu_time_ms:11.2f}x")
        print(f"{lbt:8d} | " + " | ".join(row))

    best = autotune(
        app.workload(), KEPLER_K20,
        templates=LOAD_BALANCING_TEMPLATES,
        thresholds=(32, 64, 128, 256),
    )
    print(f"\nautotuner pick: {best.template} @ lbTHRES="
          f"{best.params.lb_threshold} -> {best.time_ms:.3f} ms "
          f"({base.gpu_time_ms / best.time_ms:.2f}x over baseline)")


if __name__ == "__main__":
    main()
