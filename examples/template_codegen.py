#!/usr/bin/env python
"""The compiler story: from a plain nested loop to template CUDA code.

The paper's pitch is that these templates live in a *compiler*: "the
programmer [writes] only the simplified code in Figure 1(a)".  This
example plays the compiler: it takes the SpMV loop nest, emits the CUDA
a template pass would generate for two different templates, and then uses
the simulator's autotuner to decide which template/threshold the compiler
should actually pick for a given dataset.

Run:  python examples/template_codegen.py
"""

from repro.apps import SpMVApp
from repro.core import (
    LoopNestSpec,
    TemplateParams,
    autotune,
    generate_cuda,
)
from repro.gpusim import KEPLER_K20
from repro.graphs import citeseer_like


def main() -> None:
    spec = LoopNestSpec(
        name="spmv",
        outer_size_expr="n_rows",
        trip_count_expr="row_offsets[i + 1] - row_offsets[i]",
        body="y[i] += vals[row_offsets[i] + j] * x[cols[row_offsets[i] + j]];",
        args=["const int *row_offsets", "const int *cols",
              "const double *vals", "const double *x", "double *y",
              "int n_rows"],
    )

    print("What the programmer writes (Fig. 1(a)):\n")
    print("    for (i = 0; i < n_rows; i++)")
    print("        for (j = 0; j < row_offsets[i+1] - row_offsets[i]; j++)")
    print("            y[i] += vals[...] * x[cols[...]];\n")

    print("=" * 70)
    print("What the compiler emits for dbuf-shared:\n")
    print(generate_cuda(spec, "dbuf-shared", TemplateParams(lb_threshold=32)))

    print("=" * 70)
    print("...and for dpar-opt:\n")
    print(generate_cuda(spec, "dpar-opt", TemplateParams(lb_threshold=32)))

    print("=" * 70)
    print("Which one should the compiler pick for this dataset?")
    graph = citeseer_like(scale=0.02, seed=0)
    app = SpMVApp(graph)
    best = autotune(app.workload(), KEPLER_K20, thresholds=(32, 64, 128))
    print(f"  -> {best.template} @ lbTHRES={best.params.lb_threshold} "
          f"({best.time_ms:.3f} ms simulated on {KEPLER_K20.name})")


if __name__ == "__main__":
    main()
