#!/usr/bin/env python
"""Watching nested launches run: timelines of dpar-naive vs dpar-opt.

The executor can record every launch's lifetime; the timeline utilities
render them as an ASCII Gantt chart and quantify idle gaps.  dpar-naive's
chart is a staircase of serialized slivers; dpar-opt's children overlap
their parent's remaining blocks — the visual version of Fig. 5's bars.

Run:  python examples/launch_timeline.py
"""

from repro.apps import SpMVApp
from repro.core import TemplateParams, resolve
from repro.gpusim import KEPLER_K20, GpuExecutor, build_timeline
from repro.graphs import citeseer_like


def show(template_name: str, workload, params) -> None:
    graph, _ = resolve(template_name, kind="nested-loop").build(workload, KEPLER_K20, params)
    executor = GpuExecutor(KEPLER_K20, record_timeline=True)
    result = executor.run(graph)
    timeline = build_timeline(result)
    print(f"--- {template_name}: {result.time_ms:.3f} ms, "
          f"{timeline.n_launches} launches "
          f"({timeline.device_launch_fraction:.0%} nested), "
          f"idle {timeline.idle_fraction():.0%} of the makespan")
    print(timeline.gantt(width=64, max_rows=12))


def main() -> None:
    app = SpMVApp(citeseer_like(scale=0.004, seed=0))
    workload = app.workload()
    params = TemplateParams(lb_threshold=64)
    for name in ("dbuf-shared", "dpar-opt", "dpar-naive"):
        show(name, workload, params)
    print("dbuf-shared: one dense kernel.  dpar-opt: a few fat children")
    print("overlapping the parent.  dpar-naive: a wall of serialized")
    print("slivers with launch-machinery gaps between them.")


if __name__ == "__main__":
    main()
