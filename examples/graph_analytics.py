#!/usr/bin/env python
"""Graph analytics workloads: SSSP, PageRank and BC under load balancing.

Reproduces the §III.B story on a small scale: pick an application and a
load-balancing threshold, and see how the delayed-buffer templates move
hub vertices into block-mapped processing.  Also demonstrates that every
template computes identical results (verified against scipy/networkx
references in the test suite).

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro.apps import BCApp, PageRankApp, SSSPApp
from repro.core import TemplateParams
from repro.gpusim import KEPLER_K20
from repro.graphs import citeseer_like, fraction_above_threshold, wiki_vote_like


def main() -> None:
    citeseer = citeseer_like(scale=0.02, seed=0)
    wiki = wiki_vote_like(seed=0)

    print("How much work does lbTHRES move to the block-mapped phase?")
    for lbt in (32, 128, 1024):
        nodes, edges = fraction_above_threshold(citeseer, lbt)
        print(f"  lbTHRES={lbt:5d}: {nodes:6.1%} of nodes hold "
              f"{edges:6.1%} of the edges")
    print()

    apps = {
        "SSSP": SSSPApp(citeseer),
        "PageRank": PageRankApp(citeseer, n_iters=10),
        "BC": BCApp(wiki, n_sources=4),
    }
    for name, app in apps.items():
        base = app.run("baseline", KEPLER_K20)
        dbuf = app.run("dbuf-shared", KEPLER_K20, TemplateParams(lb_threshold=32))
        assert np.allclose(np.asarray(base.result, dtype=float),
                           np.asarray(dbuf.result, dtype=float),
                           equal_nan=True), "templates must agree!"
        print(f"{name:9s} baseline {base.gpu_time_ms:8.3f} ms "
              f"({base.speedup:4.1f}x vs CPU) | dbuf-shared "
              f"{dbuf.gpu_time_ms:8.3f} ms "
              f"({base.gpu_time_ms / dbuf.gpu_time_ms:4.2f}x vs baseline)")

    print("\nResults are bit-identical across templates: load balancing")
    print("changes the mapping of work to hardware, never the answer.")


if __name__ == "__main__":
    main()
