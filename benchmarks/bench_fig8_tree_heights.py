"""Benchmark regenerating Figure 8 (tree heights)."""

from conftest import run_once

from repro.bench.registry import run_experiment


def test_fig8_tree_heights(benchmark, bench_config):
    by_degree, by_sparsity, profiling = run_once(
        benchmark, lambda: run_experiment("fig8", bench_config)
    )
    # same qualitative shape as Fig. 7
    assert all(v < 1.0 for v in by_degree.column("rec-naive"))
    hier = by_degree.column("rec-hier")
    assert hier[-1] > hier[0]
    # Fig. 8(b): hierarchical warp utilization drops as sparsity grows
    hier_warp = [row[6] for row in profiling.rows if row[0] == "sparsity"]
    assert hier_warp[0] >= hier_warp[-1]
