"""Benchmark regenerating the §III.B baseline speedups."""

from conftest import run_once

from repro.bench.registry import run_experiment


def test_baseline_speedups(benchmark, bench_config):
    (table,) = run_once(
        benchmark, lambda: run_experiment("baselines", bench_config)
    )
    measured = dict(zip(table.column("app"), table.column("measured")))
    # all baselines actually beat serial CPU
    for app, value in measured.items():
        assert value > 1.0, app
    # paper ordering: PageRank posts the largest baseline speedup and the
    # memory-bound SpMV/BC the smallest
    assert measured["PageRank"] == max(measured.values())
    assert measured["PageRank"] > measured["SSSP"]
