#!/usr/bin/env python
"""Harness speed benchmark: the Fig. 4 sweep, seed vs fast vs two-level.

Times repeated regenerations of the Fig. 4 block-size sweep three ways:

* **seed mode** — how the harness ran at the repo seed: the reference
  event-per-block executor engine, no plan cache, one process;
* **fast mode** — the cohort-batched fast engine, plan cache on,
  ``--jobs`` worker processes with repetitions of the same sweep cell
  chunked onto the same worker so its plan cache stays warm;
* **two-level mode** — fast mode plus the two-level plan pipeline's disk
  artifact cache (``--cache-dir``): workers share workload analyses,
  built plans and deterministic run results through one directory, so
  repeated sweeps skip the simulation entirely and cold builds are paid
  once across the whole pool (see docs/performance.md);
* **fused mode** — one process, plan + disk caches, and every sweep's
  run-tier misses executed as a **single fused event-loop pass**
  (``repro.core.base.run_many`` over all 49 template runs of the sweep)
  instead of one executor pass per cell — no worker startup, no
  per-worker dataset regeneration, one merge-path-vectorized scheduler
  pass over the whole batch.  Bit-exact: the fused tables are required
  to match seed mode with **zero** relative difference.

Each mode runs ``--reps`` full sweeps; realistic regeneration sessions
re-run experiments repeatedly (scale/seed tweaks, plot iterations), which
is exactly where the caches pay.  All modes produce the merged result
tables; the script cross-checks them cell-by-cell to 1e-6 against the
exact seed mode before trusting the timing, then verifies that a traced
cross-process warm sweep reports nonzero disk-cache hits and writes a
``BENCH_harness_speed.json`` record::

    python benchmarks/bench_harness_speed.py                 # full config
    python benchmarks/bench_harness_speed.py --scale 0.01 --reps 2 --jobs 2

The full config is the acceptance configuration (scale 0.05, 4 jobs);
``make bench-smoke`` runs the tiny one.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.registry import ExperimentConfig, get_experiment  # noqa: E402
from repro.bench.runner import _run_unit, run_units  # noqa: E402
from repro.core.artifactcache import configure_artifact_cache  # noqa: E402
from repro.core.plancache import set_plan_cache_enabled  # noqa: E402
from repro.gpusim.executor import set_default_engine  # noqa: E402


def _sweep_inline(config: ExperimentConfig, reps: int, engine: str,
                  plan_cache: bool):
    """``reps`` serial sweeps in this process; returns (tables, wall_s)."""
    exp = get_experiment("fig4")
    start = time.perf_counter()
    for _ in range(reps):
        tables = [
            _run_unit("fig4", key, config, engine, plan_cache)[0]
            for key in exp.variants(config)
        ]
        merged = exp.merge(config, tables)
    return merged, time.perf_counter() - start


def _sweep_pooled(config: ExperimentConfig, reps: int, jobs: int,
                  engine: str, plan_cache: bool):
    """``reps`` sweeps through one persistent pool; returns (tables, wall_s).

    All repetitions of one sweep cell are submitted as one chunk, so they
    land on one worker and repetitions 2..n hit that worker's plan cache.
    """
    exp = get_experiment("fig4")
    keys = exp.variants(config)
    tasks = [(key, "fig4") for key in keys for _ in range(reps)]
    start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        results = list(pool.map(
            _run_unit,
            [t[1] for t in tasks],
            [t[0] for t in tasks],
            [config] * len(tasks),
            [engine] * len(tasks),
            [plan_cache] * len(tasks),
            chunksize=reps,
        ))
    wall = time.perf_counter() - start
    # last repetition of each variant, in variants() order
    parts = [results[i * reps + reps - 1][0] for i in range(len(keys))]
    return exp.merge(config, parts), wall


def _sweep_two_level(config: ExperimentConfig, reps: int, jobs: int,
                     cache_dir: str):
    """``reps`` sweeps through one pool sharing a disk artifact cache.

    Same shape as :func:`_sweep_pooled`, plus every unit points at
    ``cache_dir``: workers share workload analyses and plans through it,
    and repetitions 2..n of a cell skip the simulation via the ``run``
    tier.  Returns ``(tables, wall_s, disk_stats)`` where ``disk_stats``
    sums the per-unit artifact-cache deltas across the whole pool.
    """
    exp = get_experiment("fig4")
    keys = exp.variants(config)
    tasks = [(key, "fig4") for key in keys for _ in range(reps)]
    start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        results = list(pool.map(
            _run_unit,
            [t[1] for t in tasks],
            [t[0] for t in tasks],
            [config] * len(tasks),
            ["fast"] * len(tasks),
            [True] * len(tasks),
            [False] * len(tasks),       # trace
            [cache_dir] * len(tasks),
            chunksize=reps,
        ))
    wall = time.perf_counter() - start
    parts = [results[i * reps + reps - 1][0] for i in range(len(keys))]
    disk = {"hits": 0, "misses": 0, "writes": 0, "corrupt": 0}
    for r in results:
        if r[4] is not None:
            for k in disk:
                disk[k] += r[4][k]
    return exp.merge(config, parts), wall, disk


def _sweep_fused(config: ExperimentConfig, reps: int, cache_dir: str):
    """``reps`` fused in-process sweeps; returns (tables, wall_s).

    The whole Fig. 4 sweep — the baseline plus every (lbTHRES, block,
    template) cell — is prepared through the normal plan/disk cache
    ladder, then every run-tier miss executes as **one** fused executor
    pass.  Repetitions 2..n hit the run tier.  The dataset is built once
    in this process (the pooled modes pay it once per worker).
    """
    from repro.apps.spmv import SpMVApp
    from repro.bench.experiments.common import (
        FIG6_TEMPLATES,
        citeseer_for,
        params_for,
    )
    from repro.bench.experiments.fig4_spmv_blocksize import (
        BLOCK_SIZES,
        LB_SETTINGS,
    )
    from repro.core.base import run_many
    from repro.core.params import TemplateParams
    from repro.core.registry import resolve

    set_default_engine("fast")
    set_plan_cache_enabled(True)
    configure_artifact_cache(cache_dir)
    exp = get_experiment("fig4")
    start = time.perf_counter()
    workload = None
    for _ in range(reps):
        if workload is None:
            # built once and reused across reps — the same policy as the
            # pooled modes, whose workers cache the app across their chunk
            app = SpMVApp(citeseer_for(config), seed=config.seed)
            workload = app.workload()
        cells = [(lbt, block) for lbt in LB_SETTINGS
                 for block in BLOCK_SIZES]
        items = [(resolve("baseline", kind="nested-loop"), workload,
                  TemplateParams())]
        for lbt, block in cells:
            for name in FIG6_TEMPLATES:
                items.append((resolve(name, kind="nested-loop"), workload,
                              params_for(lbt, lb_block=block)))
        runs = run_many(items, config.device)
        parts = [("base", runs[0].time_ms)]
        pos = 1
        for lbt, block in cells:
            times = [runs[pos + i].time_ms for i in range(len(FIG6_TEMPLATES))]
            parts.append(("cell", lbt, block, times))
            pos += len(FIG6_TEMPLATES)
        merged = exp.merge(config, parts)
    return merged, time.perf_counter() - start


def _traced_disk_hits(config: ExperimentConfig, jobs: int,
                      cache_dir: str) -> dict:
    """Disk-cache counters of one traced warm cross-process sweep.

    Runs the sweep once more with tracing on and ``--jobs`` workers; the
    workers' ``artifact_cache.*`` counters merge into this process's
    tracer, so the returned map proves the disk cache was actually shared
    across processes (nonzero hits), not just warm in one.
    """
    from repro import obs

    exp = get_experiment("fig4")
    units = [("fig4", key) for key in exp.variants(config)]
    obs.reset()
    obs.set_enabled(True)
    try:
        run_units(units, config, jobs, engine="fast", plan_cache=True,
                  trace=True, cache_dir=cache_dir)
        counters = obs.summary().get("counters", {})
    finally:
        obs.set_enabled(False)
        obs.reset()
    return {
        name: count for name, count in counters.items()
        if name.startswith("artifact_cache.") and name.endswith(".hits")
    }


def _cross_check(seed_tables, fast_tables, rel_tol: float = 1e-6) -> float:
    """Largest relative difference between the two modes' table cells."""
    worst = 0.0
    for ts, tf in zip(seed_tables, fast_tables):
        for row_s, row_f in zip(ts.rows, tf.rows):
            for a, b in zip(row_s, row_f):
                if isinstance(a, float):
                    worst = max(worst, abs(a - b) / max(abs(a), 1e-12))
    if worst > rel_tol:
        raise SystemExit(
            f"mode diverged from seed mode: max rel diff {worst:.3e} "
            f"(tolerance {rel_tol:g})"
        )
    return worst


def _baseline_for(baseline: dict, scale: float, reps: int, jobs: int):
    """The baseline record matching this run's configuration, or None.

    The recorded JSON carries the full-configuration record at top level
    and (optionally) a ``smoke_baseline`` block recorded at the smoke
    configuration; speedups are only comparable at matching configs.
    """
    for candidate in (baseline, baseline.get("smoke_baseline")):
        if not candidate:
            continue
        config = candidate.get("config", {})
        if (
            config.get("scale") == scale
            and config.get("reps") == reps
            and candidate.get("fast_mode", {}).get("jobs") == jobs
        ):
            return candidate
    return None


def _apply_gate(record: dict, gate_path: Path, tolerance: float) -> int:
    """Regression gate: fail loudly on a >``tolerance`` speedup drop.

    Compares this run's seed-vs-fast speedup against the recorded
    baseline at the *same* configuration — the ratio normalizes machine
    load, which raw wall times would not.  Returns a process exit code.
    """
    if not gate_path.exists():
        print(f"gate: no baseline at {gate_path}; skipping (record one "
              f"with --out / --as-smoke-baseline)")
        return 0
    baseline = json.loads(gate_path.read_text())
    matched = _baseline_for(
        baseline, record["config"]["scale"], record["config"]["reps"],
        record["fast_mode"]["jobs"],
    )
    if matched is None:
        print(f"gate: {gate_path} has no record at this configuration "
              f"(scale={record['config']['scale']}, "
              f"reps={record['config']['reps']}, "
              f"jobs={record['fast_mode']['jobs']}); skipping")
        return 0
    status = 0
    checks = [("speedup", "fast path")]
    if "two_level_speedup" in matched:
        checks.append(("two_level_speedup", "two-level pipeline"))
    if "fused_speedup" in matched:
        checks.append(("fused_speedup", "fused executor path"))
    for field, label in checks:
        floor = matched[field] * (1 - tolerance)
        verdict = "PASS" if record[field] >= floor else "FAIL"
        print(f"gate: {label} {record[field]:.2f}x vs baseline "
              f"{matched[field]:.2f}x (floor {floor:.2f}x after "
              f"{tolerance:.0%} tolerance) -> {verdict}")
        if verdict == "FAIL":
            print(f"gate: the {label} regressed by more than "
                  f"{tolerance:.0%}; investigate before merging "
                  f"(baseline recorded {matched.get('date', 'unknown')})",
                  file=sys.stderr)
            status = 1
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--reps", type=int, default=6,
                        help="sweep repetitions per mode (default 6)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="fast-mode worker processes (default 4)")
    parser.add_argument("--smoke", action="store_true",
                        help="preset: scale 0.01, 2 reps, 2 jobs (the "
                             "make bench-smoke configuration)")
    parser.add_argument("--gate", type=Path, default=None, metavar="JSON",
                        help="compare against this recorded baseline and "
                             "fail on a regression")
    parser.add_argument("--gate-tolerance", type=float, default=0.25,
                        help="allowed fractional speedup drop before the "
                             "gate fails (default 0.25)")
    parser.add_argument("--as-smoke-baseline", action="store_true",
                        help="store this run as the smoke_baseline block "
                             "of the recorded BENCH json instead of "
                             "overwriting the full record")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_harness_speed.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.scale, args.reps, args.jobs = 0.01, 2, 2
        if args.out == REPO_ROOT / "BENCH_harness_speed.json" \
                and not args.as_smoke_baseline:
            args.out = REPO_ROOT / ".bench_smoke.json"
    if not 0 < args.gate_tolerance < 1:
        parser.error("--gate-tolerance must be in (0, 1)")

    config = ExperimentConfig(scale=args.scale, seed=args.seed)
    print(f"fig4 sweep, scale={args.scale}, {args.reps} rep(s) per mode")

    # keep the seed/fast modes honest: no inherited disk cache
    configure_artifact_cache(None)

    print(f"seed mode: exact engine, no plan cache, 1 process ...")
    seed_tables, seed_wall = _sweep_inline(
        config, args.reps, engine="exact", plan_cache=False)
    print(f"  {seed_wall:.1f}s ({seed_wall / args.reps:.1f}s per sweep)")

    print(f"fast mode: fast engine, plan cache, {args.jobs} jobs ...")
    fast_tables, fast_wall = _sweep_pooled(
        config, args.reps, args.jobs, engine="fast", plan_cache=True)
    print(f"  {fast_wall:.1f}s ({fast_wall / args.reps:.1f}s per sweep)")

    print(f"two-level mode: fast mode + shared disk artifact cache ...")
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    fused_cache_dir = tempfile.mkdtemp(prefix="repro-bench-fused-")
    try:
        two_tables, two_wall, disk_stats = _sweep_two_level(
            config, args.reps, args.jobs, cache_dir)
        print(f"  {two_wall:.1f}s ({two_wall / args.reps:.1f}s per sweep); "
              f"disk cache {disk_stats['hits']} hit(s) / "
              f"{disk_stats['misses']} miss(es)")
        traced_hits = _traced_disk_hits(config, max(args.jobs, 2), cache_dir)

        print("fused mode: in-process, plan + disk caches, one fused "
              "executor pass per sweep ...")
        fused_tables, fused_wall = _sweep_fused(
            config, args.reps, fused_cache_dir)
        print(f"  {fused_wall:.1f}s ({fused_wall / args.reps:.1f}s per "
              f"sweep)")
    finally:
        configure_artifact_cache(None)
        shutil.rmtree(cache_dir, ignore_errors=True)
        shutil.rmtree(fused_cache_dir, ignore_errors=True)
        # the benchmark toggled process-global engine/cache state; restore
        set_default_engine("fast")
        set_plan_cache_enabled(True)
    if not traced_hits or sum(traced_hits.values()) == 0:
        raise SystemExit(
            "two-level mode verification failed: the traced cross-process "
            "sweep reported no disk-cache hits in the obs summary"
        )
    print(f"  traced cross-process disk hits: {traced_hits}")

    worst = _cross_check(seed_tables, fast_tables)
    worst_two = _cross_check(seed_tables, two_tables)
    # the fused path must be BIT-exact against seed mode, not just close
    worst_fused = _cross_check(seed_tables, fused_tables, rel_tol=0.0)
    speedup = seed_wall / fast_wall
    two_speedup = seed_wall / two_wall
    two_vs_fast = fast_wall / two_wall
    fused_speedup = seed_wall / fused_wall
    fused_vs_two = two_wall / fused_wall
    print(f"modes agree (max rel diff {max(worst, worst_two):.2e}, "
          f"fused {worst_fused:.1e}); "
          f"wall-time reduction: fast {speedup:.2f}x, "
          f"two-level {two_speedup:.2f}x ({two_vs_fast:.2f}x over fast), "
          f"fused {fused_speedup:.2f}x ({fused_vs_two:.2f}x over two-level)")

    record = {
        "benchmark": "harness_speed",
        "description": "Fig. 4 block-size sweep regeneration, seed path "
                       "vs fast path vs two-level plan pipeline",
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": {"scale": args.scale, "seed": args.seed,
                   "reps": args.reps, "device": config.device.name},
        "seed_mode": {"engine": "exact", "plan_cache": False, "jobs": 1,
                      "wall_s": round(seed_wall, 3)},
        "fast_mode": {"engine": "fast", "plan_cache": True,
                      "jobs": args.jobs, "wall_s": round(fast_wall, 3)},
        "two_level_mode": {"engine": "fast", "plan_cache": True,
                           "disk_cache": True, "jobs": args.jobs,
                           "wall_s": round(two_wall, 3),
                           "disk": disk_stats,
                           "traced_cross_process_hits": traced_hits},
        "fused_mode": {"engine": "fast", "plan_cache": True,
                       "disk_cache": True, "jobs": 1, "fused": True,
                       "wall_s": round(fused_wall, 3)},
        "speedup": round(speedup, 3),
        "two_level_speedup": round(two_speedup, 3),
        "two_level_vs_fast": round(two_vs_fast, 3),
        "fused_speedup": round(fused_speedup, 3),
        "fused_vs_two_level": round(fused_vs_two, 3),
        "max_rel_diff": worst,
        "max_rel_diff_two_level": worst_two,
        "max_rel_diff_fused": worst_fused,
    }
    bench_path = REPO_ROOT / "BENCH_harness_speed.json"
    if args.as_smoke_baseline:
        # fold this run into the recorded file's smoke_baseline block
        recorded = (
            json.loads(bench_path.read_text()) if bench_path.exists() else {}
        )
        recorded["smoke_baseline"] = record
        bench_path.write_text(json.dumps(recorded, indent=2) + "\n")
        print(f"recorded smoke baseline in {bench_path}")
    else:
        if args.out == bench_path and bench_path.exists():
            # a full re-record must not drop the smoke baseline block
            smoke = json.loads(bench_path.read_text()).get("smoke_baseline")
            if smoke is not None:
                record["smoke_baseline"] = smoke
        args.out.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.out}")

    if args.gate:
        return _apply_gate(record, args.gate, args.gate_tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
