#!/usr/bin/env python
"""Harness speed benchmark: the Fig. 4 sweep, seed path vs fast path.

Times repeated regenerations of the Fig. 4 block-size sweep two ways:

* **seed mode** — how the harness ran at the repo seed: the reference
  event-per-block executor engine, no plan cache, one process;
* **fast mode** — the current hot path: cohort-batched fast engine, plan
  cache on, ``--jobs`` worker processes with repetitions of the same sweep
  cell chunked onto the same worker so its plan cache stays warm.

Each mode runs ``--reps`` full sweeps; realistic regeneration sessions
re-run experiments repeatedly (scale/seed tweaks, plot iterations), which
is exactly where the plan cache pays.  Both modes produce the merged
result tables; the script cross-checks them cell-by-cell to 1e-6 before
trusting the timing, then writes a ``BENCH_harness_speed.json`` record::

    python benchmarks/bench_harness_speed.py                 # full config
    python benchmarks/bench_harness_speed.py --scale 0.01 --reps 2 --jobs 2

The full config is the acceptance configuration (scale 0.05, 4 jobs);
``make bench-smoke`` runs the tiny one.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.registry import ExperimentConfig, get_experiment  # noqa: E402
from repro.bench.runner import _run_unit  # noqa: E402
from repro.core.plancache import set_plan_cache_enabled  # noqa: E402
from repro.gpusim.executor import set_default_engine  # noqa: E402


def _sweep_inline(config: ExperimentConfig, reps: int, engine: str,
                  plan_cache: bool):
    """``reps`` serial sweeps in this process; returns (tables, wall_s)."""
    exp = get_experiment("fig4")
    start = time.perf_counter()
    for _ in range(reps):
        tables = [
            _run_unit("fig4", key, config, engine, plan_cache)[0]
            for key in exp.variants(config)
        ]
        merged = exp.merge(config, tables)
    return merged, time.perf_counter() - start


def _sweep_pooled(config: ExperimentConfig, reps: int, jobs: int,
                  engine: str, plan_cache: bool):
    """``reps`` sweeps through one persistent pool; returns (tables, wall_s).

    All repetitions of one sweep cell are submitted as one chunk, so they
    land on one worker and repetitions 2..n hit that worker's plan cache.
    """
    exp = get_experiment("fig4")
    keys = exp.variants(config)
    tasks = [(key, "fig4") for key in keys for _ in range(reps)]
    start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        results = list(pool.map(
            _run_unit,
            [t[1] for t in tasks],
            [t[0] for t in tasks],
            [config] * len(tasks),
            [engine] * len(tasks),
            [plan_cache] * len(tasks),
            chunksize=reps,
        ))
    wall = time.perf_counter() - start
    # last repetition of each variant, in variants() order
    parts = [results[i * reps + reps - 1][0] for i in range(len(keys))]
    return exp.merge(config, parts), wall


def _cross_check(seed_tables, fast_tables, rel_tol: float = 1e-6) -> float:
    """Largest relative difference between the two modes' table cells."""
    worst = 0.0
    for ts, tf in zip(seed_tables, fast_tables):
        for row_s, row_f in zip(ts.rows, tf.rows):
            for a, b in zip(row_s, row_f):
                if isinstance(a, float):
                    worst = max(worst, abs(a - b) / max(abs(a), 1e-12))
    if worst > rel_tol:
        raise SystemExit(
            f"fast mode diverged from seed mode: max rel diff {worst:.3e}"
        )
    return worst


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--reps", type=int, default=6,
                        help="sweep repetitions per mode (default 6)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="fast-mode worker processes (default 4)")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_harness_speed.json")
    args = parser.parse_args(argv)

    config = ExperimentConfig(scale=args.scale, seed=args.seed)
    print(f"fig4 sweep, scale={args.scale}, {args.reps} rep(s) per mode")

    print(f"seed mode: exact engine, no plan cache, 1 process ...")
    seed_tables, seed_wall = _sweep_inline(
        config, args.reps, engine="exact", plan_cache=False)
    print(f"  {seed_wall:.1f}s ({seed_wall / args.reps:.1f}s per sweep)")

    print(f"fast mode: fast engine, plan cache, {args.jobs} jobs ...")
    fast_tables, fast_wall = _sweep_pooled(
        config, args.reps, args.jobs, engine="fast", plan_cache=True)
    print(f"  {fast_wall:.1f}s ({fast_wall / args.reps:.1f}s per sweep)")

    # the benchmark toggled process-global engine/cache state; restore
    set_default_engine("fast")
    set_plan_cache_enabled(True)

    worst = _cross_check(seed_tables, fast_tables)
    speedup = seed_wall / fast_wall
    print(f"modes agree (max rel diff {worst:.2e}); "
          f"wall-time reduction: {speedup:.2f}x")

    record = {
        "benchmark": "harness_speed",
        "description": "Fig. 4 block-size sweep regeneration, "
                       "seed path vs fast path",
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": {"scale": args.scale, "seed": args.seed,
                   "reps": args.reps, "device": config.device.name},
        "seed_mode": {"engine": "exact", "plan_cache": False, "jobs": 1,
                      "wall_s": round(seed_wall, 3)},
        "fast_mode": {"engine": "fast", "plan_cache": True,
                      "jobs": args.jobs, "wall_s": round(fast_wall, 3)},
        "speedup": round(speedup, 3),
        "max_rel_diff": worst,
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
