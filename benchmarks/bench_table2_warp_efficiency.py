"""Benchmark regenerating Table II (dbuf-shared warp efficiency sweep)."""

from conftest import run_once

from repro.bench.registry import run_experiment


def test_table2_warp_efficiency(benchmark, bench_config):
    (table,) = run_once(benchmark, lambda: run_experiment("table2", bench_config))
    for row in table.rows:
        app, *values = row
        sweep, baseline = values[:-1], values[-1]
        # monotone non-increasing toward the baseline as lbTHRES grows
        assert sweep == sorted(sweep, reverse=True), app
        # always at or above the baseline
        assert sweep[0] > baseline, app
        assert sweep[-1] >= baseline * 0.9, app
