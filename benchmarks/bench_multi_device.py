#!/usr/bin/env python
"""Multi-device scaling benchmark on the Fig. 5 nested-loop sweep.

Drives the fig5 workload population — every SSSP relaxation round on
CiteSeer, under each load-balancing template at each lbTHRES — through a
:class:`~repro.backends.DeviceGroup` and measures two things:

* **aggregate throughput** (the gated number): the sweep's units are
  routed whole to the least-loaded of N simulated devices, heaviest
  first — the same routing the serving layer uses.  The simulator is
  deterministic, so one device's total is exactly the sum of the unit
  times and the group's makespan is the busiest member; aggregate
  speedup is their ratio.  Acceptance requires >= 2.5x at ``--devices
  4``.
* **sharded per-run latency** (reported, not gated): each heavy unit is
  also run sharded across the group (``repro.run(..., devices=N)``
  semantics).  Per-run scaling is physics-bound by the heaviest rows —
  a block-per-row phase's critical path does not shrink with more
  devices — which is why latency speedups sit below the throughput
  number.  While sharding, the per-device work counters
  (``device.<i>.outer`` / ``device.<i>.pairs``) are asserted to sum
  exactly to the single-device totals: the equivalence invariant.

The record lands in ``BENCH_multi_device.json``::

    python benchmarks/bench_multi_device.py                # full config
    python benchmarks/bench_multi_device.py --smoke        # tiny/quick

``--min-speedup`` turns the run into a gate (nonzero exit when the
aggregate throughput advantage falls below the floor); the acceptance
configuration requires >= 2.5x.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs  # noqa: E402
from repro.apps.sssp import SSSPApp  # noqa: E402
from repro.backends import DeviceGroup  # noqa: E402
from repro.core.params import TemplateParams  # noqa: E402
from repro.core.registry import LOAD_BALANCING_TEMPLATES, resolve  # noqa: E402
from repro.core.sharding import clear_shard_cache  # noqa: E402
from repro.gpusim.config import KEPLER_K20  # noqa: E402
from repro.graphs import citeseer_like  # noqa: E402

LB_SWEEP = (32, 64, 128, 256)


def fig5_units(scale: float, lb_sweep: tuple[int, ...]) -> list[dict]:
    """The fig5 sweep as independent work units, heaviest first."""
    app = SSSPApp(citeseer_like(scale=scale))
    workloads = [
        app.round_workload(frontier, edge_idx, targets, improving)
        for frontier, edge_idx, targets, improving, _ in app._rounds()
    ]
    units = [
        {"template": tmpl, "lbt": lbt, "round": i, "workload": wl}
        for tmpl in LOAD_BALANCING_TEMPLATES
        for lbt in lb_sweep
        for i, wl in enumerate(workloads)
    ]
    units.sort(key=lambda u: u["workload"].n_pairs, reverse=True)
    return units


def run_routed(units: list[dict], devices: int) -> dict:
    """Route whole units across the group, least-loaded first.

    One pass yields both sides of the comparison: the single-device
    total is the sum of the (deterministic) unit times, the group
    makespan is the busiest member's accumulated simulated time.
    """
    group = DeviceGroup(KEPLER_K20, devices)
    total_pairs = 0
    for unit in units:
        tmpl = resolve(unit["template"], kind="nested-loop")
        idx = group.acquire()
        run = tmpl.run(unit["workload"], KEPLER_K20,
                       TemplateParams(lb_threshold=unit["lbt"]),
                       executor=group.members[idx])
        group.complete(idx, busy_ms=run.result.time_ms)
        total_pairs += unit["workload"].n_pairs
    busy = [member.busy_ms for member in group.members]
    single_ms = sum(busy)
    makespan_ms = max(busy)
    return {
        "units": len(units),
        "total_pairs": total_pairs,
        "single_device_ms": round(single_ms, 6),
        "makespan_ms": round(makespan_ms, 6),
        "per_device_busy_ms": [round(b, 6) for b in busy],
        "per_device_units": [m.submissions for m in group.members],
        "throughput_single_pairs_per_ms": round(total_pairs / single_ms, 1),
        "throughput_group_pairs_per_ms": round(total_pairs / makespan_ms, 1),
        "aggregate_speedup": round(single_ms / makespan_ms, 3),
    }


def run_sharded_check(units: list[dict], devices: int) -> dict:
    """Shard each unit across the group; verify the counter invariant."""
    group = DeviceGroup(KEPLER_K20, devices)
    by_template: dict[str, dict[str, float]] = {}
    for unit in units:
        tmpl = resolve(unit["template"], kind="nested-loop")
        params = TemplateParams(lb_threshold=unit["lbt"])
        wl = unit["workload"]
        single = tmpl.run(wl, KEPLER_K20, params)

        obs.reset()
        obs.set_enabled(True)
        try:
            multi = tmpl.run(wl, KEPLER_K20, params, backend=group)
            counters = dict(obs.summary()["counters"])
        finally:
            obs.set_enabled(False)
            obs.reset()

        if multi.device_runs is not None:
            outer = sum(v for k, v in counters.items()
                        if k.startswith("device.") and k.endswith(".outer"))
            pairs = sum(v for k, v in counters.items()
                        if k.startswith("device.") and k.endswith(".pairs"))
            if outer != wl.outer_size or pairs != wl.n_pairs:
                raise SystemExit(
                    f"device counter invariant violated for "
                    f"{unit['template']} lbt={unit['lbt']} "
                    f"round={unit['round']}: outer {outer} vs "
                    f"{wl.outer_size}, pairs {pairs} vs {wl.n_pairs}")

        agg = by_template.setdefault(
            unit["template"], {"single_ms": 0.0, "sharded_ms": 0.0,
                               "runs": 0})
        agg["single_ms"] += single.result.time_ms
        agg["sharded_ms"] += multi.result.time_ms
        agg["runs"] += 1
    return {
        tmpl: {
            "runs": agg["runs"],
            "single_ms": round(agg["single_ms"], 6),
            "sharded_ms": round(agg["sharded_ms"], 6),
            "latency_speedup": round(agg["single_ms"] / agg["sharded_ms"], 3),
        }
        for tmpl, agg in sorted(by_template.items())
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--devices", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.05,
                        help="CiteSeer dataset scale (fig5 default)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail when the aggregate throughput advantage "
                             "falls below this ratio (acceptance: 2.5)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_multi_device.json")
    args = parser.parse_args(argv)
    if args.devices < 1:
        parser.error("--devices must be >= 1")
    lb_sweep = LB_SWEEP
    if args.smoke:
        args.scale = min(args.scale, 0.02)
        lb_sweep = (32, 128)

    units = fig5_units(args.scale, lb_sweep)
    n_rounds = len({u["round"] for u in units})
    print(f"fig5 sweep: {len(units)} units "
          f"({len(LOAD_BALANCING_TEMPLATES)} templates x {len(lb_sweep)} "
          f"lbTHRES x {n_rounds} SSSP rounds, scale {args.scale:g})")

    t0 = time.perf_counter()
    print(f"routing whole units across {args.devices} devices "
          f"(least-loaded, heaviest first) ...")
    routed = run_routed(units, args.devices)
    print(f"  single device {routed['single_device_ms']:.3f} ms, "
          f"{args.devices}-device makespan {routed['makespan_ms']:.3f} ms "
          f"-> {routed['aggregate_speedup']:.2f}x aggregate throughput "
          f"({routed['throughput_group_pairs_per_ms']:,.0f} pairs/ms)")

    clear_shard_cache()
    print("sharding each unit across the group (counter invariant) ...")
    sharded = run_sharded_check(units, args.devices)
    for tmpl, row in sharded.items():
        print(f"  {tmpl}: {row['latency_speedup']:.2f}x per-run "
              f"({row['runs']} runs)")
    print(f"  device.<i>.outer/pairs counters sum to single-device totals "
          f"on every sharded run (measured in {time.perf_counter()-t0:.1f}s)")

    record = {
        "benchmark": "multi_device",
        "description": "fig5 SSSP sweep through a DeviceGroup: aggregate "
                       "throughput via least-loaded whole-unit routing, "
                       "plus sharded per-run latency and the per-device "
                       "counter equivalence invariant",
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": {
            "devices": args.devices, "scale": args.scale,
            "templates": list(LOAD_BALANCING_TEMPLATES),
            "lb_sweep": list(lb_sweep), "rounds": n_rounds,
        },
        "routed": routed,
        "sharded": sharded,
        "aggregate_speedup": routed["aggregate_speedup"],
        "counter_invariant": "device.<i>.outer/pairs sum to single-device "
                             "totals on every sharded run (verified)",
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.min_speedup and routed["aggregate_speedup"] < args.min_speedup:
        print(f"FAIL: aggregate speedup {routed['aggregate_speedup']:.2f}x "
              f"below the --min-speedup {args.min_speedup:g}x floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
