"""Benchmark regenerating Figure 6 (BC / PageRank / SpMV lbTHRES sweeps)."""

from conftest import run_once

from repro.bench.registry import run_experiment


def test_fig6_nested_loops(benchmark, bench_config):
    bc, pagerank, spmv = run_once(
        benchmark, lambda: run_experiment("fig6", bench_config)
    )
    # speedups shrink as lbTHRES grows, for every app
    for table in (bc, pagerank, spmv):
        for tmpl in ("dbuf-global", "dbuf-shared"):
            values = table.column(tmpl)
            assert values[0] >= values[-1], (table.title, tmpl)
    # the best setting of each app beats the baseline
    for table in (bc, pagerank, spmv):
        assert max(table.column("dbuf-shared")) > 1.0
    # paper: dual-queue is competitive on the small BC dataset but falls
    # behind the delayed buffers on the large datasets
    for table in (pagerank, spmv):
        assert max(table.column("dbuf-shared")) >= max(table.column("dual-queue"))
