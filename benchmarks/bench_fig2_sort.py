"""Benchmark regenerating Figure 2 (sort comparison)."""

from conftest import run_once

from repro.bench.registry import run_experiment


def test_fig2_sorts(benchmark, bench_config):
    tables = run_once(benchmark, lambda: run_experiment("fig2", bench_config))
    (table,) = tables
    simple = table.column("quicksort-simple")
    advanced = table.column("quicksort-advanced")
    merge = table.column("mergesort")
    # Fig. 2 shape: mergesort < advanced < simple at every size
    for m, a, s in zip(merge, advanced, simple):
        assert m < a < s
    # larger arrays take longer
    assert merge == sorted(merge)
