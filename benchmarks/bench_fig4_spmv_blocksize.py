"""Benchmark regenerating Figure 4 (SpMV block-size study)."""

from conftest import run_once

from repro.bench.registry import run_experiment


def test_fig4_spmv_blocksize(benchmark, bench_config):
    tables = run_once(benchmark, lambda: run_experiment("fig4", bench_config))
    assert len(tables) == 3  # one per lbTHRES in {64, 128, 192}
    # Fig. 4 shape: the load-balancing templates beat the baseline at
    # lbTHRES=64 for every block size (speedup > 1)
    lb64 = tables[0]
    for col in ("dbuf-global", "dbuf-shared"):
        assert all(v > 1.0 for v in lb64.column(col))
    # lbTHRES dominates block size: the spread across block sizes within
    # one chart is smaller than the spread across lbTHRES settings
    def spread(values):
        return max(values) - min(values)

    within = spread(tables[0].column("dbuf-shared"))
    across = abs(
        max(tables[0].column("dbuf-shared"))
        - min(tables[2].column("dbuf-shared"))
    )
    assert across >= within * 0.5
