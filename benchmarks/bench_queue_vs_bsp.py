#!/usr/bin/env python
"""Queue vs BSP execution models across graph diameters.

The experiment behind the queue backend's existence (Atos's headline
result): on high-diameter graphs, level-synchronous BSP execution pays
one host kernel launch per round over ever-smaller frontiers, while the
persistent task-queue model pays a single launch plus per-task queue
traffic and one counting-quiescence termination window.  This benchmark
sweeps both models over the asynchronous applications:

* **BFS and SSSP on 4-neighbor grids** (``grid_graph``) of growing side
  — diameter grows linearly, the classic queue-friendly regime;
* **BFS and SSSP on a power-law graph** (``citeseer_like``, the fig5
  dataset) — low diameter, wide frontiers: the regime where BSP
  amortizes its launches and the queue's schedule inflation shows;
* **the recursive tree walk** (fig7/fig9-style recursion) — spawned
  tasks vs one launch per tree level.

Every config reports both times, the speedup, the schedule's work
inflation (live visits per reached node), and the queue's termination
overhead as a fraction of its makespan — the price Atos names for
deleting the barriers.  Acceptance: the queue must beat BSP on at least
one high-diameter (grid) config; ``--min-speedup`` gates on the best
grid speedup.

The record lands in ``BENCH_queue_vs_bsp.json``::

    python benchmarks/bench_queue_vs_bsp.py              # full sweep
    python benchmarks/bench_queue_vs_bsp.py --smoke      # tiny/quick
    python benchmarks/bench_queue_vs_bsp.py --min-speedup 1.0   # gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.apps.asyncq import (  # noqa: E402
    AsyncBFSApp,
    AsyncSSSPApp,
    AsyncTreeWalkApp,
)
from repro.graphs import citeseer_like  # noqa: E402
from repro.graphs.generators import grid_graph  # noqa: E402
from repro.trees.generator import generate_tree  # noqa: E402

GRID_SIDES = (16, 32, 48, 64)
SMOKE_SIDES = (16, 24)


def run_config(app, family: str, dataset: str) -> dict:
    """Both execution models on one app instance, plus the diagnostics."""
    queue_run = app.run("queue")
    bsp_run = app.run("sim")
    if not np.array_equal(queue_run.result, bsp_run.result):
        raise SystemExit(
            f"{app.name} on {dataset}: queue and BSP results diverged")
    row = {
        "app": app.name,
        "family": family,
        "dataset": dataset,
        "queue_ms": round(queue_run.gpu_time_ms, 6),
        "bsp_ms": round(bsp_run.gpu_time_ms, 6),
        "speedup": round(bsp_run.gpu_time_ms / queue_run.gpu_time_ms, 3),
        "bsp_rounds": bsp_run.meta["rounds"],
        "termination_overhead": round(
            queue_run.meta["termination_overhead"], 6),
    }
    if "inflation" in queue_run.meta:
        row["inflation"] = round(queue_run.meta["inflation"], 3)
        row["requests"] = queue_run.meta["requests"]
        row["stale"] = queue_run.meta["stale"]
    return row


def grid_configs(sides: tuple[int, ...]) -> list[dict]:
    rows = []
    for side in sides:
        graph = grid_graph(side, seed=1)
        for app_cls in (AsyncBFSApp, AsyncSSSPApp):
            rows.append(run_config(app_cls(graph, source=0),
                                   family="grid", dataset=graph.name))
            print(_fmt(rows[-1]))
    return rows


def power_law_configs(scale: float) -> list[dict]:
    graph = citeseer_like(scale=scale)
    rows = []
    for app_cls in (AsyncBFSApp, AsyncSSSPApp):
        rows.append(run_config(app_cls(graph, source=0),
                               family="power-law", dataset=graph.name))
        print(_fmt(rows[-1]))
    return rows


def tree_configs(depth: int) -> list[dict]:
    """Two recursion shapes: bushy (BSP-friendly, wide levels) and deep
    sparse (queue-friendly, a launch per nearly-empty level)."""
    shapes = (
        generate_tree(depth=depth, outdegree=3, sparsity=0.2, seed=7),
        generate_tree(depth=depth + 5, outdegree=2, sparsity=0.4, seed=7),
    )
    rows = []
    for tree in shapes:
        rows.append(run_config(AsyncTreeWalkApp(tree), family="tree",
                               dataset=tree.name))
        print(_fmt(rows[-1]))
    return rows


def _fmt(row: dict) -> str:
    extra = (f", inflation {row['inflation']:.2f}"
             if "inflation" in row else "")
    return (f"  {row['app']:>14} {row['dataset']:<16} "
            f"queue {row['queue_ms']:8.3f} ms vs bsp {row['bsp_ms']:8.3f} ms "
            f"({row['bsp_rounds']:>3} rounds) -> {row['speedup']:5.2f}x"
            f", term {row['termination_overhead']:.4f}{extra}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scale", type=float, default=0.05,
                        help="power-law (citeseer_like) dataset scale")
    parser.add_argument("--tree-depth", type=int, default=9)
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail when the best grid (high-diameter) "
                             "speedup falls below this ratio "
                             "(acceptance: 1.0)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_queue_vs_bsp.json")
    args = parser.parse_args(argv)
    sides = SMOKE_SIDES if args.smoke else GRID_SIDES
    if args.smoke:
        args.scale = min(args.scale, 0.02)
        args.tree_depth = min(args.tree_depth, 7)

    t0 = time.perf_counter()
    print("high-diameter grids (one launch per BSP round):")
    rows = grid_configs(sides)
    print(f"power-law graph (scale {args.scale:g}):")
    rows += power_law_configs(args.scale)
    print("recursive tree walk:")
    rows += tree_configs(args.tree_depth)

    grid_rows = [r for r in rows if r["family"] == "grid"]
    best = max(grid_rows, key=lambda r: r["speedup"])
    wins = sum(1 for r in grid_rows if r["speedup"] > 1.0)
    term_worst = max(r["termination_overhead"] for r in rows)
    print(
        f"best high-diameter speedup: {best['speedup']:.2f}x "
        f"({best['app']} on {best['dataset']}); queue wins "
        f"{wins}/{len(grid_rows)} grid configs; max termination overhead "
        f"{term_worst:.4f} ({time.perf_counter() - t0:.1f}s)"
    )

    record = {
        "benchmark": "queue_vs_bsp",
        "description": "asynchronous (persistent task-queue) vs "
                       "level-synchronous (launch-per-round BSP) execution "
                       "of BFS/SSSP/tree-walk across graph diameters; "
                       "results verified bit-identical per config",
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": {
            "grid_sides": list(sides),
            "power_law_scale": args.scale,
            "tree_depth": args.tree_depth,
        },
        "configs": rows,
        "best_grid_speedup": best["speedup"],
        "grid_wins": wins,
        "max_termination_overhead": term_worst,
        "equivalence": "queue and BSP results bit-identical on every "
                       "config (verified)",
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.min_speedup and best["speedup"] < args.min_speedup:
        print(f"GATE FAILED: best grid speedup {best['speedup']:.2f}x "
              f"< required {args.min_speedup:g}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
