"""Benchmark regenerating Figure 7 (tree descendants)."""

from conftest import run_once

from repro.bench.registry import run_experiment


def test_fig7_tree_descendants(benchmark, bench_config):
    by_degree, by_sparsity, profiling = run_once(
        benchmark, lambda: run_experiment("fig7", bench_config)
    )
    # rec-naive is far below 1x at every outdegree (tiny nested launches)
    assert all(v < 1.0 for v in by_degree.column("rec-naive"))
    # rec-hier improves with outdegree and beats rec-naive everywhere
    hier = by_degree.column("rec-hier")
    assert hier[-1] > hier[0]
    for h, n in zip(hier, by_degree.column("rec-naive")):
        assert h > n
    # at the largest outdegree the hierarchical kernel overtakes flat
    flat = by_degree.column("flat")
    assert hier[-1] > flat[-1]
    # flat's atomics grow with outdegree (profiling table, outdegree rows)
    atomics = [row[3] for row in profiling.rows if row[0] == "outdegree"]
    assert atomics == sorted(atomics)
