"""Shared fixtures for the paper-artifact benchmarks.

Every ``bench_*.py`` file regenerates one table/figure of the paper via
the experiment registry, times it with pytest-benchmark, and asserts the
paper's qualitative shape on the produced tables.  Scales are small so the
whole directory runs in minutes; use ``python -m repro.bench <id> --scale
0.15`` for paper-closer datasets.
"""

import pytest

from repro.bench.registry import ExperimentConfig


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Small-scale configuration shared by all benchmark files."""
    return ExperimentConfig(scale=0.02, seed=0)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
