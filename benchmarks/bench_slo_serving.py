#!/usr/bin/env python
"""SLO-aware serving benchmark: priority/deadline scheduling under overload.

Drives one multi-tenant request mix (three tenants, high/normal/low
priority classes, per-class deadlines) through the **same overloaded
arrival process** twice:

* the **no-SLO baseline** — a plain FIFO service: no priorities, no
  deadlines, no per-class bounds.  Every request waits behind the whole
  backlog, so the intended-high-priority traffic inherits the queue's
  tail latency.
* the **SLO-aware service** — strict priority scheduling, per-class
  admission bounds, per-tenant quotas, deadline-aware shedding of work
  that cannot meet its budget, proactive degradation of low-priority
  dynamic-parallelism batches, and (optionally) device-group
  autoscaling.

Arrivals are open-loop at ``--overload`` times the service's measured
closed-loop capacity, so a real backlog builds and tail latency means
something.  Both runs are scored per *intended* class — the baseline is
handed no SLO metadata but its responses are still grouped by what class
each request would have carried.

The headline metric is the high-priority p99 ratio (baseline / SLO-aware)
with shed/degraded/rejected counts per class; the record lands in
``BENCH_slo_serving.json``::

    python benchmarks/bench_slo_serving.py                # full (10k+ reqs)
    python benchmarks/bench_slo_serving.py --smoke        # tiny/quick

``--min-p99-ratio`` turns the run into a gate (nonzero exit when the
high-priority p99 improvement falls below the floor); the acceptance
configuration requires >= 3x.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.handle import serve  # noqa: E402
from repro.service.loadgen import (  # noqa: E402
    build_slo_mix,
    mix_profile,
    run_closed_loop,
    run_open_loop,
)

#: per-class deadline budgets (seconds) for the SLO-aware run: high gets
#: a generous budget (it should essentially never shed), low a tight one
#: (under overload its backlog is the first thing deadline-aware
#: scheduling reclaims)
DEADLINES_S = {"high": 30.0, "normal": 5.0, "low": 1.0}

#: the mix cycles these over its distinct identities; ``dpar-opt`` uses
#: dynamic parallelism, giving the overload-degradation path real work
MIX_TEMPLATES = ("dbuf-global", "dual-queue", "dpar-opt", "thread-mapped")


def measure_capacity(mix, workers: int, probe: int,
                     max_pending: int) -> float:
    """Peak served throughput of a plain service over a burst probe.

    A closed-loop probe would *under*-measure: micro-batching coalesces
    harder the deeper the backlog, so the service speeds up under load.
    Instead the probe is fired open-loop at an unpayable rate and the
    drain throughput — coalescing fully engaged — is the capacity the
    overload multiplier applies to.  The probe also warms every
    plan-cache identity, so the two measured runs start from the same
    cache state.
    """
    probe_mix = [(t, w) for t, w, _ in mix[:probe]]
    with serve(workers=workers, max_batch=32, batch_window_s=0.002,
               max_pending=max_pending) as svc:
        # closed-loop warmup touches every identity without overload
        run_closed_loop(svc, probe_mix[: len(probe_mix) // 2], clients=8)
        result = run_open_loop(svc, probe_mix, rate_rps=1e9)
    return result["throughput_rps"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--requests", type=int, default=10_000)
    parser.add_argument("--distinct", type=int, default=6,
                        help="distinct (workload, template) identities")
    parser.add_argument("--outer-size", type=int, default=3000)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--overload", type=float, default=2.0,
                        help="offered rate as a multiple of measured "
                             "closed-loop capacity")
    parser.add_argument("--probe", type=int, default=400,
                        help="requests used to measure capacity (and warm "
                             "the plan caches)")
    parser.add_argument("--max-pending", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--autoscale", action="store_true", default=True)
    parser.add_argument("--no-autoscale", dest="autoscale",
                        action="store_false")
    parser.add_argument("--min-p99-ratio", type=float, default=0.0,
                        help="fail when baseline_p99 / slo_p99 for the "
                             "high class falls below this (acceptance: 3.0)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_slo_serving.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.requests = min(args.requests, 800)
        args.outer_size = min(args.outer_size, 1200)
        args.probe = min(args.probe, 120)
        args.max_pending = min(args.max_pending, 600)

    mix = build_slo_mix(
        args.requests,
        deadlines_s=DEADLINES_S,
        distinct=args.distinct,
        outer_size=args.outer_size,
        templates=MIX_TEMPLATES,
        seed=args.seed,
    )
    labels = [kwargs["priority"] for _, _, kwargs in mix]
    profile = mix_profile(mix)
    print(f"request mix: {json.dumps(profile)}")

    print(f"measuring capacity ({args.probe}-request burst probe) ...")
    capacity = measure_capacity(mix, args.workers, args.probe,
                                args.max_pending)
    rate = capacity * args.overload
    print(f"  capacity ~{capacity:.0f} req/s -> offering {rate:.0f} req/s "
          f"({args.overload:g}x)")

    # ---- no-SLO baseline: same arrivals, FIFO, no metadata ------------
    print("no-SLO baseline (FIFO, no priorities/deadlines) ...")
    stripped = [(t, w) for t, w, _ in mix]
    t0 = time.perf_counter()
    with serve(workers=args.workers, max_pending=args.max_pending,
               max_batch=32, batch_window_s=0.002) as svc:
        baseline = run_open_loop(svc, stripped, rate_rps=rate, labels=labels)
        baseline_stats = svc.stats()
    print(f"  {baseline['wall_s']:.2f}s wall, ok={baseline['ok']}, "
          f"high-class p99 "
          f"{baseline['classes']['high']['latency_ms']['p99']:.1f}ms "
          f"(measured in {time.perf_counter() - t0:.1f}s)")

    # ---- SLO-aware service: same arrivals, full policy ----------------
    print("SLO-aware service (priorities, quotas, deadlines, "
          f"autoscale={'on' if args.autoscale else 'off'}) ...")
    slo_config = dict(
        workers=args.workers,
        max_pending=args.max_pending,
        max_batch=32,
        batch_window_s=0.002,
        # low/normal may not fill the whole queue: high always has room
        max_pending_per_class={
            "normal": args.max_pending // 2,
            "low": args.max_pending // 4,
        },
        tenant_quota=args.max_pending,  # generous; exercised, not binding
        shed_deadlines=True,
        degrade_pending_threshold=args.max_pending // 4,
    )
    if args.autoscale:
        slo_config.update(
            devices=1, autoscale=True, max_devices=4,
            scale_up_pending_per_device=max(8, args.max_pending // 8),
            scale_check_interval_s=0.05, scale_cooldown_s=0.2,
        )
    t0 = time.perf_counter()
    with serve(**slo_config) as svc:
        slo = run_open_loop(svc, mix, rate_rps=rate)
        slo_stats = svc.stats()
    print(f"  {slo['wall_s']:.2f}s wall, ok={slo['ok']}, "
          f"high-class p99 {slo['classes']['high']['latency_ms']['p99']:.1f}ms"
          f" (measured in {time.perf_counter() - t0:.1f}s)")

    base_high = baseline["classes"]["high"]["latency_ms"]["p99"]
    slo_high = slo["classes"]["high"]["latency_ms"]["p99"]
    ratio = base_high / slo_high if slo_high else float("inf")
    print(f"high-priority p99: {base_high:.1f}ms (FIFO) -> "
          f"{slo_high:.1f}ms (SLO-aware) = {ratio:.2f}x better")
    for name, cls in slo["classes"].items():
        print(f"  {name:>6}: ok={cls['ok']} shed={cls['shed']} "
              f"rejected={cls['rejected']} degraded={cls['degraded']} "
              f"p99={cls['latency_ms']['p99']:.1f}ms")
    scaler = slo_stats["autoscaler"]
    print(f"  autoscaler: {scaler['scale_ups']} up / "
          f"{scaler['scale_downs']} down")

    record = {
        "benchmark": "slo_serving",
        "description": "open-loop overloaded multi-tenant mix: SLO-aware "
                       "(priority/quota/deadline/autoscale) service vs "
                       "no-SLO FIFO baseline, scored per intended class",
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": {
            "requests": args.requests, "distinct": args.distinct,
            "outer_size": args.outer_size, "workers": args.workers,
            "overload": args.overload, "max_pending": args.max_pending,
            "autoscale": args.autoscale, "deadlines_s": DEADLINES_S,
            "seed": args.seed, "smoke": args.smoke,
        },
        "mix": profile,
        "capacity_rps": round(capacity, 2),
        "offered_rps": round(rate, 2),
        "baseline": baseline,
        "slo": slo,
        "high_p99_ratio": round(ratio, 3),
        "baseline_service_stats": baseline_stats,
        "slo_service_stats": slo_stats,
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")

    violations = []
    for side, stats in (("baseline", baseline_stats), ("slo", slo_stats)):
        reqs = stats["requests"]
        if reqs["submitted"] != reqs["served"] + reqs["admission_rejected"]:
            violations.append(f"{side}: books do not balance: {reqs}")
    if violations:
        print("FAIL: " + "; ".join(violations), file=sys.stderr)
        return 1
    if args.min_p99_ratio and ratio < args.min_p99_ratio:
        print(f"FAIL: high-priority p99 ratio {ratio:.2f}x below the "
              f"--min-p99-ratio {args.min_p99_ratio:g}x floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
