#!/usr/bin/env python
"""Serving-layer throughput benchmark: micro-batched vs per-request.

Drives a fingerprint-heavy request mix (a few hot workload/template
identities dominate — the traffic shape micro-batching exploits) through

* the **per-request baseline**: sequential ``repro.run`` per request,
  plan cache warm — the status quo before the serving layer; and
* the **micro-batched service**: ``clients`` closed-loop callers against
  ``repro.serve``, which coalesces requests sharing a plan-cache
  identity into one executor pass.

Both sides report throughput and p50/p95/p99 latency; the record lands in
``BENCH_service_throughput.json``::

    python benchmarks/bench_service_throughput.py              # full config
    python benchmarks/bench_service_throughput.py --smoke      # tiny/quick

``--min-speedup`` turns the run into a gate (nonzero exit when the
micro-batched throughput advantage falls below the floor); the acceptance
configuration requires >= 2x.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.handle import serve  # noqa: E402
from repro.service.loadgen import (  # noqa: E402
    build_request_mix,
    mix_profile,
    run_closed_loop,
    run_unbatched,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--requests", type=int, default=400)
    parser.add_argument("--distinct", type=int, default=6,
                        help="distinct (workload, template) identities")
    parser.add_argument("--hot-fraction", type=float, default=0.75)
    parser.add_argument("--outer-size", type=int, default=12000)
    parser.add_argument("--clients", type=int, default=32,
                        help="closed-loop client threads")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--window-ms", type=float, default=3.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail when batched/unbatched throughput falls "
                             "below this ratio (acceptance: 2.0)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke")
    parser.add_argument("--trace", type=Path, default=None, metavar="JSON",
                        help="enable repro.obs tracing for the batched run "
                             "and write a Chrome trace; the aggregated span "
                             "summary is folded into the BENCH record")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_service_throughput.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.requests = min(args.requests, 80)
        args.outer_size = min(args.outer_size, 1500)
        args.clients = min(args.clients, 8)

    mix = build_request_mix(
        args.requests,
        distinct=args.distinct,
        hot_fraction=args.hot_fraction,
        outer_size=args.outer_size,
        seed=args.seed,
    )
    profile = mix_profile(mix)
    print(f"request mix: {json.dumps(profile)}")

    print("per-request baseline (sequential repro.run, plan cache warm) ...")
    t0 = time.perf_counter()
    unbatched = run_unbatched(mix)
    print(f"  {unbatched['wall_s']:.2f}s wall, "
          f"{unbatched['throughput_rps']:.0f} req/s "
          f"(measured in {time.perf_counter() - t0:.1f}s)")

    if args.trace:
        from repro import obs

        obs.reset()
        obs.set_enabled(True)
    print(f"micro-batched service ({args.clients} closed-loop clients, "
          f"max_batch={args.max_batch}, window={args.window_ms}ms) ...")
    with serve(
        workers=args.workers,
        max_batch=args.max_batch,
        batch_window_s=args.window_ms / 1e3,
    ) as svc:
        batched = run_closed_loop(svc, mix, clients=args.clients)
        stats = svc.stats()
    print(f"  {batched['wall_s']:.2f}s wall, "
          f"{batched['throughput_rps']:.0f} req/s, "
          f"mean batch {batched['mean_batch']:.1f}")

    if batched.get("failed"):
        raise SystemExit(f"{batched['failed']} requests failed")
    speedup = (
        batched["throughput_rps"] / unbatched["throughput_rps"]
        if unbatched["throughput_rps"] else 0.0
    )
    print(f"throughput: micro-batched is {speedup:.2f}x per-request "
          f"(p50 {batched['latency_ms']['p50']:.1f}ms, "
          f"p95 {batched['latency_ms']['p95']:.1f}ms, "
          f"p99 {batched['latency_ms']['p99']:.1f}ms)")

    record = {
        "benchmark": "service_throughput",
        "description": "closed-loop fingerprint-heavy request mix: "
                       "micro-batched repro.serve vs sequential repro.run",
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": {
            "requests": args.requests, "distinct": args.distinct,
            "hot_fraction": args.hot_fraction, "outer_size": args.outer_size,
            "clients": args.clients, "workers": args.workers,
            "max_batch": args.max_batch, "window_ms": args.window_ms,
            "seed": args.seed,
        },
        "mix": profile,
        "unbatched": unbatched,
        "batched": batched,
        "speedup": round(speedup, 3),
        "service_stats": stats,
    }
    if args.trace:
        from repro import obs

        obs.write_chrome_trace(args.trace)
        record["obs"] = obs.summary()
        obs.set_enabled(False)
        print(f"trace: wrote {args.trace}")
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.min_speedup and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below the "
              f"--min-speedup {args.min_speedup:g}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
