"""Benchmark regenerating Table I (SSSP profiling at lbTHRES=32)."""

from conftest import run_once

from repro.bench.registry import run_experiment


def test_table1_profiling(benchmark, bench_config):
    (table,) = run_once(benchmark, lambda: run_experiment("table1", bench_config))
    rows = {row[0]: row[1:] for row in table.rows}
    base_warp, base_gld, base_gst = rows["baseline"]
    # every template but dpar-naive raises warp efficiency over baseline
    for variant in ("dual-queue", "dbuf-shared", "dbuf-global", "dpar-opt"):
        assert rows[variant][0] > base_warp, variant
    # load-balanced phases improve load efficiency
    for variant in ("dual-queue", "dbuf-shared", "dbuf-global"):
        assert rows[variant][1] > base_gld, variant
    # dbuf-shared posts the best store efficiency (shared-memory staging)
    assert rows["dbuf-shared"][2] == max(r[2] for r in rows.values())
