"""Benchmark running the mechanism ablations (DESIGN.md §5/§7)."""

from conftest import run_once

from repro.bench.registry import run_experiment


def test_ablations(benchmark, bench_config):
    launch_tbl, locality_tbl, latency_tbl, device_tbl = run_once(
        benchmark, lambda: run_experiment("ablations", bench_config)
    )
    # dpar-naive recovers monotonically as launches get cheaper
    naive = launch_tbl.column("dpar-naive")
    assert naive == sorted(naive)
    # dbuf-shared ignores the launch-throughput knob entirely
    dbuf = launch_tbl.column("dbuf-shared")
    assert max(dbuf) - min(dbuf) < 0.05 * max(dbuf)
    # gld efficiency rises with dataset locality
    gld = locality_tbl.column("gld efficiency %")
    assert gld == sorted(gld)
    # the divergence fix persists even with zero locality
    assert locality_tbl.column("speedup over baseline")[0] > 1.5
    # dbuf-shared works on Fermi; dpar-opt does not
    rows = {r[0]: r for r in device_tbl.rows}
    fermi = [v for k, v in rows.items() if "Fermi" in k][0]
    assert fermi[1] > 1.5
    assert fermi[2] == "unsupported"
