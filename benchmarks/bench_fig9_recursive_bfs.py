"""Benchmark regenerating Figure 9 (recursive BFS slowdowns)."""

from conftest import run_once

from repro.bench.registry import run_experiment


def test_fig9_recursive_bfs(benchmark, bench_config):
    (table,) = run_once(benchmark, lambda: run_experiment("fig9", bench_config))
    # the flat GPU variant beats recursive serial CPU
    assert all(v > 1.0 for v in table.column("flat speedup"))
    # recursive GPU variants are orders of magnitude slower than the CPU
    for col in ("naive", "naive+stream", "hier", "hier+stream"):
        assert all(v > 10.0 for v in table.column(col)), col
    # one extra stream helps the naive variant substantially
    for naive, streamed in zip(table.column("naive"),
                               table.column("naive+stream")):
        assert streamed < naive * 0.7
    # extra streams change nothing for hier (already per-block streams)
    for hier, streamed in zip(table.column("hier"),
                              table.column("hier+stream")):
        assert streamed == hier
    # without extra streams, hier is competitive with naive (the paper
    # prefers it); with both GMU-bound the gap is small either way
    naive_mean = sum(table.column("naive")) / len(table.rows)
    hier_mean = sum(table.column("hier")) / len(table.rows)
    assert hier_mean <= naive_mean * 1.2
