#!/usr/bin/env python
"""Streaming mutation throughput: incremental analysis + live serving.

Two measurements of the streaming-graph pipeline (docs/streaming.md), in
one process:

* **analysis maintenance** — a workload absorbs a stream of small edge
  batches; every step we time the incremental path (delta replay through
  ``get_analysis``) against a from-scratch ``WorkloadAnalysis`` of the
  same mutated workload.  The acceptance gate: sustained incremental
  maintenance must be at least ``--min-speedup`` (3x) faster than
  re-analysis — the whole point of carrying deltas instead of
  recomputing histograms, sort orders and segment ids per mutation.
* **live serving** — one ``repro.serve`` process with a registered
  :class:`~repro.service.WorkloadStream`: a mutator thread applies
  batches as fast as the service absorbs them while query threads pin
  requests to a snapshot version.  Reported: sustained updates/sec,
  query throughput, and the torn-read count — queries pinned to version
  0 must reproduce the version-0 reference timing *exactly* regardless
  of how many mutations landed mid-flight (acceptance: zero torn reads).

The record lands in ``BENCH_streaming.json``::

    python benchmarks/bench_streaming.py                  # full run
    python benchmarks/bench_streaming.py --smoke          # tiny/quick
    python benchmarks/bench_streaming.py --min-speedup 3  # gate
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

import repro  # noqa: E402
from repro.core.analysis import (  # noqa: E402
    WorkloadAnalysis,
    analysis_stats,
    clear_analysis_cache,
    get_analysis,
)
from repro.core.artifactcache import configure_artifact_cache  # noqa: E402
from repro.core.mutation import MutationBatch, PairInserts  # noqa: E402
from repro.core.workload import AccessStream, NestedLoopWorkload  # noqa: E402


def build_workload(n_rows: int, seed: int) -> NestedLoopWorkload:
    # sparse, high-row-count shape (avg degree ~5): the streaming-graph
    # regime — road networks, social deltas — where per-mutation
    # re-analysis pays an O(n log n) re-sort the delta path avoids
    rng = np.random.default_rng(seed)
    trips = rng.zipf(1.5, size=n_rows).clip(max=12).astype(np.int64)
    nnz = int(trips.sum())
    return NestedLoopWorkload(
        name=f"stream-bench-{n_rows}",
        trip_counts=trips,
        streams=[
            AccessStream("col-index", rng.integers(0, 1 << 22, nnz) * 4,
                         "load", 4),
            AccessStream("gather", rng.integers(0, 1 << 22, nnz) * 8,
                         "load", 8),
        ],
        atomic_targets=rng.integers(-1, n_rows, nnz),
    )


def small_batch(rng: np.random.Generator, wl: NestedLoopWorkload,
                edges: int) -> MutationBatch:
    """An insert+delete batch touching ~``edges`` pairs — the steady-state
    trickle the incremental path is built for."""
    n, nnz = wl.outer_size, wl.n_pairs
    k = min(edges, max(1, nnz // 50))
    delete = rng.choice(nnz, size=k, replace=False)
    rows = rng.integers(0, n, edges)
    inserts = PairInserts(
        outer_ids=rows,
        stream_addresses=[rng.integers(0, 1 << 22, edges) * 4,
                          rng.integers(0, 1 << 22, edges) * 8],
        atomic_targets=rng.integers(-1, n, edges),
    )
    return MutationBatch(inserts=inserts, delete_pairs=delete)


# ------------------------------------------------------ analysis maintenance
def bench_analysis(n_rows: int, n_batches: int, edges: int,
                   seed: int) -> dict:
    wl = build_workload(n_rows, seed)
    rng = np.random.default_rng(seed + 1)
    clear_analysis_cache(reset_stats=True)
    get_analysis(wl)  # the base the delta chain grows from

    inc_s = scratch_s = 0.0
    for _ in range(n_batches):
        wl.apply_mutations(small_batch(rng, wl, edges))
        t0 = time.perf_counter()
        inc = get_analysis(wl)
        inc_s += time.perf_counter() - t0
        t0 = time.perf_counter()
        scratch = WorkloadAnalysis.from_workload(wl)
        scratch_s += time.perf_counter() - t0
        if inc.fingerprint != scratch.fingerprint:
            raise SystemExit("incremental analysis drifted from workload")
    stats = analysis_stats()
    return {
        "rows": wl.outer_size,
        "pairs": wl.n_pairs,
        "batches": n_batches,
        "edges_per_batch": edges,
        "incremental_ms": round(inc_s * 1e3, 3),
        "from_scratch_ms": round(scratch_s * 1e3, 3),
        "speedup": round(scratch_s / inc_s, 2) if inc_s else float("inf"),
        "updates_per_sec": round(n_batches / inc_s, 1) if inc_s else None,
        "incremental_hits": stats.get("incremental_hits", 0),
        "delta_fallbacks": stats.get("delta_fallbacks", 0),
    }


# ------------------------------------------------------------- live serving
def bench_service(n_rows: int, duration_s: float, seed: int,
                  queriers: int = 2) -> dict:
    wl = build_workload(n_rows, seed)
    stop = threading.Event()
    mutations = 0
    torn = 0
    query_ok = 0
    evicted = 0

    with repro.serve(max_batch=8, workers=1, fuse_batches=False) as svc:
        svc.register_workload("stream", wl, keep_versions=64)

        def mutator():
            nonlocal mutations
            rng = np.random.default_rng(seed + 2)
            while not stop.is_set():
                svc.mutate_workload("stream", small_batch(rng, wl, 16))
                mutations += 1

        def querier(qseed: int):
            nonlocal torn, query_ok, evicted
            from repro.errors import ServiceError

            while not stop.is_set():
                # pin a recently retained snapshot and read it twice: the
                # two answers must be identical no matter how many
                # mutations land between them
                head = svc.stats()["streams"]["stream"]["version"]
                version = max(0, head - 4)
                try:
                    first = svc.request(None, "stream", version=version)
                    second = svc.request(None, "stream", version=version)
                except ServiceError:
                    evicted += 1  # snapshot aged out of the window: retry
                    continue
                if (first.status != "ok" or second.status != "ok"
                        or first.time_ms != second.time_ms):
                    torn += 1
                else:
                    query_ok += 2

        threads = [threading.Thread(target=mutator)]
        threads += [threading.Thread(target=querier, args=(q,))
                    for q in range(queriers)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        time.sleep(duration_s)
        stop.set()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        snap = svc.stats()

    head_version = snap["streams"]["stream"]["version"]
    return {
        "rows": n_rows,
        "duration_s": round(elapsed, 3),
        "queriers": queriers,
        "mutations": mutations,
        "updates_per_sec": round(mutations / elapsed, 1),
        "queries": query_ok + torn,
        "queries_per_sec": round((query_ok + torn) / elapsed, 1),
        "torn_reads": torn,
        "evicted_retries": evicted,
        "head_version": head_version,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--rows", type=int, default=100000,
                        help="outer loop count of the streamed workload")
    parser.add_argument("--batches", type=int, default=200,
                        help="mutation batches in the analysis phase")
    parser.add_argument("--edges", type=int, default=16,
                        help="edges touched per mutation batch")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="serving phase wall budget (seconds)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail when incremental maintenance is less "
                             "than this much faster than re-analysis "
                             "(acceptance: 3.0)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_streaming.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.rows = min(args.rows, 60000)
        args.batches = min(args.batches, 60)
        args.duration = min(args.duration, 0.8)

    configure_artifact_cache(None)  # keep timings hermetic: no disk reuse
    t0 = time.perf_counter()
    analysis = bench_analysis(args.rows, args.batches, args.edges, seed=7)
    print(
        f"analysis maintenance: {analysis['batches']} batches x "
        f"{analysis['edges_per_batch']} edges over {analysis['pairs']} pairs "
        f"-> incremental {analysis['incremental_ms']:.1f} ms vs from-scratch "
        f"{analysis['from_scratch_ms']:.1f} ms ({analysis['speedup']:.2f}x, "
        f"{analysis['updates_per_sec']:.0f} updates/s, "
        f"{analysis['delta_fallbacks']} fallbacks)"
    )
    serving = bench_service(max(args.rows // 10, 1000), args.duration, seed=7)
    print(
        f"live serving: {serving['updates_per_sec']:.0f} updates/s "
        f"sustained with {serving['queries_per_sec']:.0f} pinned queries/s "
        f"({serving['queriers']} queriers), head at v{serving['head_version']}"
        f", torn reads {serving['torn_reads']}"
    )

    record = {
        "benchmark": "streaming",
        "description": "incremental WorkloadAnalysis maintenance vs "
                       "from-scratch re-analysis under a mutation stream, "
                       "plus sustained mutate+query throughput of one "
                       "serving process with snapshot-pinned reads",
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": {
            "rows": args.rows,
            "batches": args.batches,
            "edges_per_batch": args.edges,
            "serving_duration_s": args.duration,
        },
        "analysis": analysis,
        "serving": serving,
        "incremental_speedup": analysis["speedup"],
        "torn_reads": serving["torn_reads"],
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out} ({time.perf_counter() - t0:.1f}s)")

    failed = False
    if args.min_speedup and analysis["speedup"] < args.min_speedup:
        print(f"GATE FAILED: incremental speedup {analysis['speedup']:.2f}x "
              f"< required {args.min_speedup:g}x")
        failed = True
    if serving["torn_reads"]:
        print(f"GATE FAILED: {serving['torn_reads']} torn snapshot reads "
              f"(pinned version-0 queries must be immutable)")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
