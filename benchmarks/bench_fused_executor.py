#!/usr/bin/env python
"""Fused batch execution benchmark: one event loop for N mixed graphs.

Three measurements around ``execute_fused`` / ``run_many``:

1. **sweep fusion** (the gated headline): the Fig. 4 block-size sweep
   executed as one fused in-process pass per repetition versus the
   two-level pooled pipeline (fast engine + plan/disk caches + worker
   processes) — the strongest pre-fusion configuration recorded in
   BENCH_harness_speed.json.  Table cells must agree **bit-for-bit**
   (``rel_tol=0.0``), proving fusion changes wall time only;
2. **mixed-fingerprint serving**: a request mix over many distinct
   (workload, template) fingerprints driven through ``repro.serve`` with
   window fusion on vs off.  Identical-fingerprint coalescing handles
   none of the cross-fingerprint traffic — only ``fuse_batches`` merges
   those windows into single executor passes;
3. **executor micro-batch**: ``execute_fused`` over a mixed graph batch
   vs sequential ``GpuExecutor.run`` calls, with field-exact demux
   checks (per-graph cycles and counters).

The record lands in ``BENCH_fused_executor.json``::

    python benchmarks/bench_fused_executor.py              # full config
    python benchmarks/bench_fused_executor.py --smoke      # tiny/quick

``--min-speedup`` turns the run into a gate on the sweep-fusion ratio
(nonzero exit below the floor); ``make bench-fuse`` runs the smoke
configuration with a 1.3x floor.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import bench_harness_speed as harness  # noqa: E402

from repro.bench.registry import ExperimentConfig  # noqa: E402
from repro.core.artifactcache import configure_artifact_cache  # noqa: E402
from repro.core.plancache import set_plan_cache_enabled  # noqa: E402
from repro.gpusim.executor import set_default_engine  # noqa: E402
from repro.service.handle import serve  # noqa: E402
from repro.service.loadgen import (  # noqa: E402
    build_request_mix,
    mix_profile,
    run_closed_loop,
)


def _sweep_comparison(args) -> dict:
    """Fused in-process sweep vs the two-level pooled pipeline.

    Each side keeps its best-of-``sweep_trials`` wall (fresh cache dirs
    per trial, so every trial is a cold start) — smoke-scale sweep walls
    are ~1 s and single shots wander with scheduler noise.
    """
    config = ExperimentConfig(scale=args.scale, seed=args.seed)
    two_tables = two_wall = disk_stats = fused_tables = fused_wall = None
    try:
        print(f"two-level mode: fast engine, plan + disk caches, "
              f"{args.jobs} jobs, best of {args.sweep_trials} ...")
        for _ in range(args.sweep_trials):
            two_dir = tempfile.mkdtemp(prefix="bench-fuse-two-")
            try:
                tables, wall, disk = harness._sweep_two_level(
                    config, args.reps, args.jobs, two_dir)
            finally:
                shutil.rmtree(two_dir, ignore_errors=True)
            if two_wall is None or wall < two_wall:
                two_tables, two_wall, disk_stats = tables, wall, disk
        print(f"  {two_wall:.1f}s ({two_wall / args.reps:.1f}s per sweep)")
        print("fused mode: one in-process fused executor pass per sweep, "
              f"best of {args.sweep_trials} ...")
        for _ in range(args.sweep_trials):
            fused_dir = tempfile.mkdtemp(prefix="bench-fuse-one-")
            try:
                tables, wall = harness._sweep_fused(
                    config, args.reps, fused_dir)
            finally:
                shutil.rmtree(fused_dir, ignore_errors=True)
            if fused_wall is None or wall < fused_wall:
                fused_tables, fused_wall = tables, wall
        print(f"  {fused_wall:.1f}s ({fused_wall / args.reps:.1f}s per sweep)")
    finally:
        configure_artifact_cache(None)
        set_default_engine("fast")
        set_plan_cache_enabled(True)
    # both modes run the fast engine; fusion must not move a single bit
    worst = harness._cross_check(two_tables, fused_tables, rel_tol=0.0)
    speedup = two_wall / fused_wall
    print(f"sweep fusion: {speedup:.2f}x over two-level "
          f"(max rel diff {worst:.1e})")
    return {
        "two_level_wall_s": round(two_wall, 3),
        "fused_wall_s": round(fused_wall, 3),
        "disk": disk_stats,
        "speedup": round(speedup, 3),
        "max_rel_diff": worst,
    }


def _service_comparison(args) -> dict:
    """Mixed-fingerprint closed-loop serving, window fusion on vs off.

    ``hot_fraction`` is kept low and ``distinct`` high so most windows
    gather *different* fingerprints — traffic the identical-fingerprint
    coalescer cannot batch.  Each side keeps its best-of-``trials``
    throughput (serving walls this short are scheduler-noisy).
    """
    mix = build_request_mix(
        args.requests, distinct=args.distinct, hot_fraction=0.5,
        hot_count=max(2, args.distinct // 4), outer_size=args.outer_size,
        seed=args.seed,
    )
    profile = mix_profile(mix)
    print(f"service mix: {json.dumps(profile)}")
    sides: dict[bool, dict] = {}
    fused_stats = None
    for fuse in (False, True):
        best = None
        for _ in range(args.trials):
            with serve(workers=1, max_batch=args.max_batch,
                       batch_window_s=args.window_ms / 1e3,
                       fuse_batches=fuse,
                       inline_cost_threshold=10**9) as svc:
                run = run_closed_loop(svc, mix, clients=args.clients)
                stats = svc.stats()
            if run.get("failed"):
                raise SystemExit(f"{run['failed']} requests failed "
                                 f"(fuse_batches={fuse})")
            if best is None or run["throughput_rps"] > best["throughput_rps"]:
                best = run
                if fuse:
                    fused_stats = stats
        sides[fuse] = best
        label = "fused windows" if fuse else "per-batch passes"
        print(f"  {label}: {best['wall_s']:.2f}s wall, "
              f"{best['throughput_rps']:.0f} req/s")
    ratio = (sides[True]["throughput_rps"] / sides[False]["throughput_rps"]
             if sides[False]["throughput_rps"] else 0.0)
    batching = (fused_stats or {}).get("batching", {})
    print(f"service: fused windows are {ratio:.2f}x per-batch passes "
          f"({batching.get('fused_passes', 0)} fused passes covering "
          f"{batching.get('fused_batches', 0)} batches)")
    return {
        "mix": profile,
        "unfused": sides[False],
        "fused": sides[True],
        "throughput_ratio": round(ratio, 3),
        "fused_passes": batching.get("fused_passes", 0),
        "fused_batches": batching.get("fused_batches", 0),
    }


def _micro_comparison(args) -> dict:
    """``execute_fused`` vs sequential runs on one mixed in-memory batch."""
    import numpy as np

    from repro.core import AccessStream, NestedLoopWorkload, TemplateParams
    from repro.core.registry import resolve
    from repro.gpusim import KEPLER_K20, GpuExecutor, execute_fused

    rng = np.random.default_rng(args.seed)
    graphs = []
    for i in range(args.micro_workloads):
        trips = rng.zipf(1.8, size=args.micro_outer).clip(max=300)
        trips = trips.astype(np.int64)
        nnz = int(trips.sum())
        wl = NestedLoopWorkload(
            f"micro-{i}", trips,
            streams=[AccessStream("g", rng.integers(0, nnz, size=nnz) * 4)],
        )
        for name in ("thread-mapped", "dual-queue", "dbuf-global",
                     "dpar-opt"):
            built = resolve(name).build(wl, KEPLER_K20, TemplateParams())
            graphs.append(built[0] if isinstance(built, tuple) else built)
    executor = GpuExecutor(KEPLER_K20, engine="fast")
    executor.run(graphs[0])  # warm import/caches out of the timing
    t0 = time.perf_counter()
    sequential = [executor.run(g) for g in graphs]
    seq_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    fused = execute_fused(graphs, KEPLER_K20, engine="fast")
    fused_wall = time.perf_counter() - t0
    for i, (a, b) in enumerate(zip(fused, sequential)):
        if (a.cycles != b.cycles or a.sm_busy_cycles != b.sm_busy_cycles
                or a.counters != b.counters):
            raise SystemExit(f"fused demux diverged on graph {i}")
    speedup = seq_wall / fused_wall if fused_wall else 0.0
    print(f"micro-batch: {len(graphs)} graphs, sequential {seq_wall:.3f}s, "
          f"fused {fused_wall:.3f}s ({speedup:.2f}x), demux exact")
    return {
        "graphs": len(graphs),
        "sequential_wall_s": round(seq_wall, 4),
        "fused_wall_s": round(fused_wall, 4),
        "speedup": round(speedup, 3),
        "max_rel_diff": 0.0,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--reps", type=int, default=2,
                        help="sweep repetitions per mode (default 2)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="two-level worker processes (default 4)")
    parser.add_argument("--requests", type=int, default=400)
    parser.add_argument("--distinct", type=int, default=10,
                        help="distinct (workload, template) fingerprints")
    parser.add_argument("--outer-size", type=int, default=2500)
    parser.add_argument("--clients", type=int, default=24)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--window-ms", type=float, default=4.0)
    parser.add_argument("--trials", type=int, default=3,
                        help="serving trials per side (best kept)")
    parser.add_argument("--sweep-trials", type=int, default=1,
                        help="sweep trials per side, best wall kept "
                             "(--smoke raises this to 3: sub-second "
                             "smoke sweeps are scheduler-noisy)")
    parser.add_argument("--micro-workloads", type=int, default=40)
    parser.add_argument("--micro-outer", type=int, default=300)
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail when the fused sweep's speedup over the "
                             "two-level pipeline falls below this ratio "
                             "(make bench-fuse: 1.3)")
    parser.add_argument("--smoke", action="store_true",
                        help="preset: scale 0.01, tiny serving mix")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_fused_executor.json")
    args = parser.parse_args(argv)
    if args.smoke:
        args.scale, args.reps, args.jobs = 0.01, 2, 2
        args.sweep_trials = max(args.sweep_trials, 3)
        args.requests = min(args.requests, 120)
        args.outer_size = min(args.outer_size, 1200)
        args.micro_workloads = min(args.micro_workloads, 15)
        if args.out == REPO_ROOT / "BENCH_fused_executor.json":
            args.out = REPO_ROOT / ".bench_fuse_smoke.json"

    print(f"fused executor benchmark, scale={args.scale}, "
          f"{args.reps} rep(s)")
    configure_artifact_cache(None)
    sweep = _sweep_comparison(args)
    service = _service_comparison(args)
    micro = _micro_comparison(args)

    record = {
        "benchmark": "fused_executor",
        "description": "heterogeneous batch fusion: fused sweep vs "
                       "two-level pipeline, mixed-fingerprint serving "
                       "with window fusion, micro-batch demux",
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": {
            "scale": args.scale, "seed": args.seed, "reps": args.reps,
            "jobs": args.jobs, "requests": args.requests,
            "distinct": args.distinct, "outer_size": args.outer_size,
            "clients": args.clients, "max_batch": args.max_batch,
            "window_ms": args.window_ms, "trials": args.trials,
            "sweep_trials": args.sweep_trials,
        },
        "sweep_fusion": sweep,
        "service_mixed_fingerprints": service,
        "micro_batch": micro,
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.min_speedup and sweep["speedup"] < args.min_speedup:
        print(f"FAIL: sweep-fusion speedup {sweep['speedup']:.2f}x below "
              f"the --min-speedup {args.min_speedup:g}x floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
