"""Benchmark regenerating Figure 5 (SSSP template speedups)."""

from conftest import run_once

from repro.bench.registry import run_experiment


def test_fig5_sssp(benchmark, bench_config):
    speedups, kcalls = run_once(
        benchmark, lambda: run_experiment("fig5", bench_config)
    )
    # paper band: load balancing gives 2-6x at the best threshold
    best_dbuf = max(speedups.column("dbuf-shared"))
    assert 2.0 <= best_dbuf <= 6.0
    # dpar-naive is always below 1x
    assert all(v < 1.0 for v in speedups.column("dpar-naive"))
    # speedups decrease as lbTHRES grows
    dbuf = speedups.column("dbuf-shared")
    assert dbuf == sorted(dbuf, reverse=True)
    # dpar-opt spawns far fewer nested kernels than dpar-naive
    for naive, opt in zip(kcalls.column("dpar-naive"), kcalls.column("dpar-opt")):
        assert opt < naive
